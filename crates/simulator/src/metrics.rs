//! Simulation metrics — the three panels of every figure in §6.2.

use std::time::Duration;

use road_network::Cost;
use urpsm_core::objective::UnifiedCost;

/// One vehicle class's slice of the aggregate, indexed by
/// [`urpsm_core::types::ClassId`]. Served counts requests delivered by
/// workers of that class; driven distance is in free-flow cost units
/// (the economics currency — class speed stretches schedules, never
/// distances, DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassMetrics {
    /// Requests served by workers of this class.
    pub served: usize,
    /// Distance driven by workers of this class.
    pub driven_distance: Cost,
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Total number of requests replayed.
    pub requests: usize,
    /// Requests inserted into some route (and not later cancelled).
    pub served: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Requests withdrawn by their rider/shipper before pickup (zero
    /// on the legacy batch path, which replays arrival-only streams).
    pub cancelled: usize,
    /// The unified cost (Eq. 1) at the configured `α`.
    pub unified_cost: UnifiedCost,
    /// Total wall-clock time spent inside the planner.
    pub planning_time: Duration,
    /// Total distance actually driven by all workers (equals the
    /// planned distance after the drain; the audit asserts this).
    pub driven_distance: Cost,
    /// Per-class breakdown, indexed by `ClassId`. A single-class fleet
    /// has exactly one entry whose fields mirror the aggregate.
    pub per_class: Vec<ClassMetrics>,
}

impl SimMetrics {
    /// Served rate `|R⁺| / |R|`.
    pub fn served_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.served as f64 / self.requests as f64
    }

    /// Mean wall-clock time to process a single request (the paper's
    /// "response time").
    pub fn response_time(&self) -> Duration {
        if self.requests == 0 {
            return Duration::ZERO;
        }
        self.planning_time / self.requests as u32
    }
}

impl std::fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} served={} ({:.1}%) UC={} resp={:?}",
            self.requests,
            self.served,
            self.served_rate() * 100.0,
            self.unified_cost.value(),
            self.response_time(),
        )?;
        if self.cancelled > 0 {
            write!(f, " cancelled={}", self.cancelled)?;
        }
        // Single-class fleets print exactly the pre-class line.
        if self.per_class.len() > 1 {
            write!(f, " per-class=[")?;
            for (i, c) in self.per_class.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "c{i}:{}/{}", c.served, c.driven_distance)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_response_time() {
        let m = SimMetrics {
            requests: 4,
            served: 3,
            rejected: 1,
            cancelled: 0,
            unified_cost: UnifiedCost {
                alpha: 1,
                total_distance: 100,
                total_penalty: 7,
            },
            planning_time: Duration::from_millis(8),
            driven_distance: 100,
            per_class: vec![ClassMetrics {
                served: 3,
                driven_distance: 100,
            }],
        };
        assert_eq!(m.served_rate(), 0.75);
        assert_eq!(m.response_time(), Duration::from_millis(2));
        assert_eq!(m.unified_cost.value(), 107);
        assert!(m.to_string().contains("75.0%"));
    }

    #[test]
    fn empty_run_is_defined() {
        let m = SimMetrics {
            requests: 0,
            served: 0,
            rejected: 0,
            cancelled: 0,
            unified_cost: UnifiedCost::default(),
            planning_time: Duration::ZERO,
            driven_distance: 0,
            per_class: Vec::new(),
        };
        assert_eq!(m.served_rate(), 0.0);
        assert_eq!(m.response_time(), Duration::ZERO);
    }
}
