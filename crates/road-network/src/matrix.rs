//! Dense all-pairs oracle for tests, worked examples and tiny graphs.
//!
//! The paper's worked examples (Examples 1–3, Table 3) are specified by
//! concrete pairwise distances rather than an edge list; [`MatrixOracle`]
//! lets tests pin those numbers exactly. It also supports building from a
//! [`RoadNetwork`] via Floyd–Warshall with next-hop reconstruction, which
//! gives real `shortest_path` answers on small graphs.

use std::sync::Arc;

use crate::geo::Point;
use crate::graph::RoadNetwork;
use crate::oracle::DistanceOracle;
use crate::{Cost, VertexId, INF};

/// An explicit `n × n` shortest-distance matrix with coordinates.
#[derive(Debug, Clone)]
pub struct MatrixOracle {
    n: usize,
    dist: Vec<Cost>,
    /// `next[u*n + v]` = first hop on the shortest path `u -> v`
    /// (`u32::MAX` when unknown/unreachable).
    next: Vec<u32>,
    points: Vec<Point>,
    top_speed_mps: f64,
}

const NO_HOP: u32 = u32::MAX;

impl MatrixOracle {
    /// Builds from an explicit symmetric distance matrix (row-major,
    /// `dist[u][v]`); `points` supply coordinates for Euclidean bounds.
    ///
    /// Paths degrade to `[u, v]` (no intermediate vertices known).
    ///
    /// # Panics
    /// If the matrix is not square/symmetric, has a nonzero diagonal, or
    /// violates the triangle inequality — such a "metric" would break
    /// the insertion DP's correctness guarantees, so tests fail fast.
    pub fn from_matrix(dist_rows: &[Vec<Cost>], points: Vec<Point>, top_speed_mps: f64) -> Self {
        let me = Self::from_matrix_unchecked(dist_rows, points, top_speed_mps);
        let (n, dist) = (me.n, &me.dist);
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    if dist[u * n + w] < INF && dist[w * n + v] < INF {
                        assert!(
                            dist[u * n + v] <= dist[u * n + w] + dist[w * n + v],
                            "triangle inequality violated at ({u},{w},{v})"
                        );
                    }
                }
            }
        }
        me
    }

    /// Like [`MatrixOracle::from_matrix`] but without the triangle
    /// inequality audit (symmetry and a zero diagonal are still
    /// enforced).
    ///
    /// Exists for one purpose: the paper's worked Example 2 publishes
    /// distances that are *not* a metric (`dis(v1,v3) = 9` exceeds
    /// `dis(v1,v2) + dis(v2,v3) = 8`), which no real road network could
    /// produce; the golden tests reproduce the published trace on the
    /// raw numbers anyway. Do not use this for anything else.
    pub fn from_matrix_unchecked(
        dist_rows: &[Vec<Cost>],
        points: Vec<Point>,
        top_speed_mps: f64,
    ) -> Self {
        let n = dist_rows.len();
        assert_eq!(points.len(), n, "one point per vertex");
        let mut dist = vec![INF; n * n];
        for (u, row) in dist_rows.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (v, &d) in row.iter().enumerate() {
                dist[u * n + v] = d;
            }
        }
        for u in 0..n {
            assert_eq!(dist[u * n + u], 0, "diagonal must be zero");
            for v in 0..n {
                assert_eq!(dist[u * n + v], dist[v * n + u], "must be symmetric");
            }
        }
        let mut next = vec![NO_HOP; n * n];
        for u in 0..n {
            for v in 0..n {
                if u != v && dist[u * n + v] < INF {
                    next[u * n + v] = v as u32;
                }
            }
        }
        MatrixOracle {
            n,
            dist,
            next,
            points,
            top_speed_mps,
        }
    }

    /// Builds the full all-pairs matrix from a road network via
    /// Floyd–Warshall (`O(|V|^3)`, use only on small graphs).
    pub fn from_network(g: &RoadNetwork) -> Self {
        let n = g.num_vertices();
        let mut dist = vec![INF; n * n];
        let mut next = vec![NO_HOP; n * n];
        for u in 0..n {
            dist[u * n + u] = 0;
        }
        for u in g.vertices() {
            for (v, c) in g.neighbors(u) {
                let slot = u.idx() * n + v.idx();
                if c < dist[slot] {
                    dist[slot] = c;
                    next[slot] = v.0;
                }
            }
        }
        for k in 0..n {
            for u in 0..n {
                let duk = dist[u * n + k];
                if duk >= INF {
                    continue;
                }
                for v in 0..n {
                    let alt = duk + dist[k * n + v];
                    if alt < dist[u * n + v] {
                        dist[u * n + v] = alt;
                        next[u * n + v] = next[u * n + k];
                    }
                }
            }
        }
        let points = g.vertices().map(|v| g.point(v)).collect();
        MatrixOracle {
            n,
            dist,
            next,
            points,
            top_speed_mps: g.top_speed_mps(),
        }
    }

    /// Convenience: `Arc`-wrapped oracle from a network.
    pub fn shared_from_network(g: &RoadNetwork) -> Arc<Self> {
        Arc::new(Self::from_network(g))
    }
}

impl DistanceOracle for MatrixOracle {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn point(&self, v: VertexId) -> Point {
        self.points[v.idx()]
    }

    fn top_speed_mps(&self) -> f64 {
        self.top_speed_mps
    }

    #[inline]
    fn dis(&self, u: VertexId, v: VertexId) -> Cost {
        self.dist[u.idx() * self.n + v.idx()]
    }

    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        if u == v {
            return Some(vec![u]);
        }
        if self.dis(u, v) >= INF {
            return None;
        }
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            let hop = self.next[cur.idx() * self.n + v.idx()];
            if hop == NO_HOP {
                // Explicit-matrix construction: no intermediate info.
                path.push(v);
                return Some(path);
            }
            cur = VertexId(hop);
            path.push(cur);
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::dijkstra::DijkstraEngine;

    fn line_graph(n: u32) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_vertex(Point::new(f64::from(i) * 100.0, 0.0));
        }
        for i in 1..n {
            b.add_edge_with_cost(VertexId(i - 1), VertexId(i), 10)
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = line_graph(8);
        let m = MatrixOracle::from_network(&g);
        let mut e = DijkstraEngine::for_network(&g);
        for u in g.vertices() {
            e.sssp(&g, u);
            for v in g.vertices() {
                assert_eq!(m.dis(u, v), e.dist_to(v));
            }
        }
    }

    #[test]
    fn next_hop_paths_are_real_paths() {
        let g = line_graph(6);
        let m = MatrixOracle::from_network(&g);
        let p = m.shortest_path(VertexId(0), VertexId(5)).unwrap();
        assert_eq!(p.len(), 6);
        for (i, v) in p.iter().enumerate() {
            assert_eq!(*v, VertexId(i as u32));
        }
    }

    #[test]
    fn explicit_matrix_roundtrip() {
        let rows = vec![vec![0, 5, 9], vec![5, 0, 4], vec![9, 4, 0]];
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(90.0, 0.0),
        ];
        let m = MatrixOracle::from_matrix(&rows, pts, 23.0);
        assert_eq!(m.dis(VertexId(0), VertexId(2)), 9);
        assert_eq!(m.dis(VertexId(2), VertexId(1)), 4);
        assert_eq!(
            m.shortest_path(VertexId(0), VertexId(2)),
            Some(vec![VertexId(0), VertexId(2)])
        );
    }

    #[test]
    #[should_panic(expected = "triangle inequality")]
    fn rejects_non_metric_matrix() {
        let rows = vec![vec![0, 1, 100], vec![1, 0, 1], vec![100, 1, 0]];
        let pts = vec![Point::default(); 3];
        MatrixOracle::from_matrix(&rows, pts, 23.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_matrix() {
        let rows = vec![vec![0, 1], vec![2, 0]];
        let pts = vec![Point::default(); 2];
        MatrixOracle::from_matrix(&rows, pts, 23.0);
    }

    #[test]
    fn disconnected_matrix_from_network() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        b.add_vertex(Point::new(2.0, 0.0)); // island
        b.add_edge_with_cost(a, c, 3).unwrap();
        let g = b.finish().unwrap();
        let m = MatrixOracle::from_network(&g);
        assert_eq!(m.dis(a, VertexId(2)), INF);
        assert_eq!(m.shortest_path(a, VertexId(2)), None);
    }
}
