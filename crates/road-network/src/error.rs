//! Error types for road-network construction and queries.

use crate::VertexId;

/// Errors raised while building or loading a road network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// An edge referenced a vertex that was never added.
    UnknownVertex(VertexId),
    /// A self-loop `(v, v)` was added; road networks must be simple.
    SelfLoop(VertexId),
    /// An edge was given a zero or overflowing cost.
    InvalidEdgeCost {
        /// Edge tail.
        from: VertexId,
        /// Edge head.
        to: VertexId,
    },
    /// The network has no vertices.
    Empty,
    /// The vertex count exceeds `u32::MAX`.
    TooManyVertices(usize),
    /// A serialized network failed validation on load.
    Corrupt(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            NetworkError::SelfLoop(v) => write!(f, "self-loop at {v}"),
            NetworkError::InvalidEdgeCost { from, to } => {
                write!(f, "invalid cost on edge ({from}, {to})")
            }
            NetworkError::Empty => write!(f, "network has no vertices"),
            NetworkError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the u32 index space")
            }
            NetworkError::Corrupt(msg) => write!(f, "corrupt network data: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Convenience alias for fallible network operations.
pub type Result<T> = std::result::Result<T, NetworkError>;
