//! Road-network substrate for the URPSM reproduction.
//!
//! The URPSM paper (Tong et al., PVLDB'18) treats the road network as an
//! undirected graph whose edge costs are travel times, and assumes an
//! oracle answering shortest-*distance* queries in (amortized) constant
//! time — in their implementation a hub-label index [Abraham et al. 2011]
//! fronted by an LRU cache. This crate provides that whole substrate:
//!
//! * [`graph`] — compact CSR road networks with coordinates and road
//!   classes ([`graph::RoadNetwork`], [`builder::NetworkBuilder`]).
//! * [`dijkstra`] — a reusable Dijkstra engine for distances, paths and
//!   nearest-vertex queries.
//! * [`hub_labels`] — pruned landmark labeling (exact hub labels) with
//!   merge-join `O(|label|)` distance queries.
//! * [`matrix`] — a dense all-pairs oracle for tests and tiny graphs
//!   (this is what the paper's worked examples are verified against).
//! * [`cache`] — an LRU cache decorator shared by all planners, exactly
//!   as in §6.1 of the paper.
//! * [`oracle`] — the [`oracle::DistanceOracle`] trait plus counting
//!   decorators used to reproduce the paper's saved-query statistics.
//! * [`grid`] — the uniform grid index used to shortlist candidate
//!   workers (plain buckets) and the heavier sorted-cell variant used by
//!   the `tshare` baseline.
//!
//! All travel costs are integer **centiseconds** of travel time
//! (see [`Cost`]); the paper uses time and distance interchangeably
//! (Def. 1), and integers keep every DP comparison exact.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidirectional;
pub mod builder;
pub mod cache;
pub mod congestion;
pub mod dijkstra;
pub mod error;
pub mod fxhash;
pub mod geo;
pub mod graph;
pub mod grid;
pub mod hub_labels;
pub mod io;
pub mod matrix;
pub mod oracle;
pub mod td;

/// Travel cost in integer centiseconds of travel time.
///
/// Def. 1 of the paper lets the edge cost be "either a distance or an
/// average travel time"; we fix travel time so that deadlines, slack and
/// detours all live in the same unit. One unit = 10 ms of driving.
pub type Cost = u64;

/// "Infinite" cost: large enough to dominate every real cost, small
/// enough that summing a handful of them cannot wrap a `u64`.
pub const INF: Cost = u64::MAX / 8;

/// Saturating cost addition that also clamps at [`INF`].
///
/// The insertion DP freely adds detours to possibly-infinite partial
/// results (e.g. `Dio[j] + det(..)` where `Dio[j] = INF`); clamping keeps
/// those comparisons well-defined without an `Option` in the hot loop.
#[inline]
pub fn cost_add(a: Cost, b: Cost) -> Cost {
    a.saturating_add(b).min(INF)
}

/// Three-way saturating cost addition (see [`cost_add`]).
#[inline]
pub fn cost_add3(a: Cost, b: Cost, c: Cost) -> Cost {
    cost_add(cost_add(a, b), c)
}

/// A vertex handle into a [`graph::RoadNetwork`] (or any oracle).
#[derive(
    Debug,
    Default,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::bidirectional::BidirDijkstra;
    pub use crate::builder::NetworkBuilder;
    pub use crate::cache::LruCachedOracle;
    pub use crate::congestion::{congestion_from_env, CongestionProfile, TravelTimeProvider};
    pub use crate::dijkstra::DijkstraEngine;
    pub use crate::geo::Point;
    pub use crate::graph::{RoadClass, RoadNetwork};
    pub use crate::grid::{GridIndex, SortedCellGrid};
    pub use crate::hub_labels::HubLabels;
    pub use crate::matrix::MatrixOracle;
    pub use crate::oracle::{CountingOracle, DistanceOracle, QueryStats};
    pub use crate::td::{
        td_oracle_from_env, TdCachedOracle, TdDijkstra, TdSearchStats, TdTravelTimeProvider,
        TimeDependentOracle,
    };
    pub use crate::{cost_add, cost_add3, Cost, VertexId, INF};
}
