//! Exact hub labeling via pruned landmark labeling (PLL).
//!
//! §6.1 of the paper answers shortest-distance queries with "a hub-based
//! labeling algorithm implemented for road network [Abraham et al. 2011]".
//! We implement the equivalent exact scheme of Akiba et al.'s pruned
//! landmark labeling: vertices are processed in importance order
//! (degree-descending), each running a *pruned* Dijkstra that appends
//! `(hub, dist)` entries to the labels of every vertex it settles; a
//! settle is pruned when the already-built labels certify an equal or
//! shorter distance. Queries are merge-joins of two sorted label arrays.
//!
//! The result is exact on undirected graphs and answers queries in
//! `O(|label|)` — effectively the paper's "O(1) shortest distance query"
//! assumption at city scale.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::{Cost, VertexId, INF};

/// An exact two-hop distance index over a [`RoadNetwork`].
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// CSR offsets into `hubs`/`dists`, one slot per vertex.
    offsets: Vec<u32>,
    /// Hub *ranks* (position in the construction order), ascending per
    /// vertex so queries can merge-join.
    hubs: Vec<u32>,
    /// Distance from the vertex to each hub, aligned with `hubs`.
    dists: Vec<Cost>,
}

impl HubLabels {
    /// Builds labels for `g` with a degree-descending vertex order.
    pub fn build(g: &RoadNetwork) -> Self {
        let order = Self::degree_order(g);
        Self::build_with_order(g, &order)
    }

    /// Builds labels with an explicit vertex order (highest importance
    /// first). Exposed for tests and order experiments.
    pub fn build_with_order(g: &RoadNetwork, order: &[VertexId]) -> Self {
        let n = g.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        // Temporary per-vertex label vectors, flattened at the end.
        let mut labels: Vec<Vec<(u32, Cost)>> = vec![Vec::new(); n];

        // Workhorse arrays for the pruned Dijkstra.
        let mut dist = vec![INF; n];
        let mut epoch = vec![0u32; n];
        let mut cur_epoch = 0u32;
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        // Scratch: distances from the current hub according to existing
        // labels, indexed by hub rank (for O(1) prune checks).
        let mut hub_dist: Vec<Cost> = vec![INF; n];

        for (rank, &root) in order.iter().enumerate() {
            let rank = rank as u32;
            cur_epoch += 1;
            heap.clear();

            // Load the root's current label into the rank-indexed table
            // so prune checks are O(|label(root)|) total, not per-settle.
            for &(h, d) in &labels[root.idx()] {
                hub_dist[h as usize] = d;
            }

            dist[root.idx()] = 0;
            epoch[root.idx()] = cur_epoch;
            heap.push(Reverse((0, root.0)));

            while let Some(Reverse((d, v))) = heap.pop() {
                let vi = v as usize;
                if epoch[vi] != cur_epoch || d > dist[vi] {
                    continue;
                }
                // Prune: can existing labels already certify dist(root, v) <= d?
                let mut certified = INF;
                for &(h, dv) in &labels[vi] {
                    let via = hub_dist[h as usize];
                    if via < INF {
                        certified = certified.min(via + dv);
                    }
                }
                if certified <= d {
                    continue;
                }
                labels[vi].push((rank, d));

                let lo = g.offsets[vi] as usize;
                let hi = g.offsets[vi + 1] as usize;
                for k in lo..hi {
                    let t = g.targets[k] as usize;
                    let nd = d + g.costs[k];
                    if epoch[t] != cur_epoch {
                        epoch[t] = cur_epoch;
                        dist[t] = INF;
                    }
                    if nd < dist[t] {
                        dist[t] = nd;
                        heap.push(Reverse((nd, t as u32)));
                    }
                }
            }

            // Unload the rank table.
            for &(h, _) in &labels[root.idx()] {
                hub_dist[h as usize] = INF;
            }
        }

        // Flatten into CSR (labels are already rank-ascending: each
        // vertex is appended to in increasing rank order).
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut hubs = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        offsets.push(0u32);
        for l in &labels {
            debug_assert!(l.windows(2).all(|w| w[0].0 < w[1].0));
            for &(h, d) in l {
                hubs.push(h);
                dists.push(d);
            }
            offsets.push(hubs.len() as u32);
        }
        HubLabels {
            offsets,
            hubs,
            dists,
        }
    }

    /// Degree-descending construction order (ties by id), a standard
    /// effective heuristic for road networks.
    pub fn degree_order(g: &RoadNetwork) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|v| (Reverse(g.degree(*v)), v.0));
        order
    }

    /// Exact shortest distance between `u` and `v`; [`INF`] when
    /// disconnected.
    #[inline]
    pub fn distance(&self, u: VertexId, v: VertexId) -> Cost {
        if u == v {
            return 0;
        }
        let (ul, uh) = (
            self.offsets[u.idx()] as usize,
            self.offsets[u.idx() + 1] as usize,
        );
        let (vl, vh) = (
            self.offsets[v.idx()] as usize,
            self.offsets[v.idx() + 1] as usize,
        );
        let mut i = ul;
        let mut j = vl;
        let mut best = INF;
        while i < uh && j < vh {
            match self.hubs[i].cmp(&self.hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = self.dists[i] + self.dists[j];
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Total number of label entries (index size).
    pub fn num_entries(&self) -> usize {
        self.hubs.len()
    }

    /// Mean label entries per vertex.
    pub fn avg_label_size(&self) -> f64 {
        if self.offsets.len() <= 1 {
            return 0.0;
        }
        self.num_entries() as f64 / (self.offsets.len() - 1) as f64
    }

    /// Rough heap footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.hubs.len() * 4 + self.dists.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::dijkstra::DijkstraEngine;
    use crate::geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_connected_graph(n: u32, extra_edges: u32, seed: u64) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_vertex(Point::new(f64::from(i), 0.0));
        }
        // Random spanning tree keeps it connected.
        for i in 1..n {
            let p = rng.gen_range(0..i);
            b.add_edge_with_cost(VertexId(i), VertexId(p), rng.gen_range(1..100))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge_with_cost(VertexId(u), VertexId(v), rng.gen_range(1..100))
                    .unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = random_connected_graph(60, 90, seed);
            let hl = HubLabels::build(&g);
            let mut e = DijkstraEngine::for_network(&g);
            for u in 0..60u32 {
                e.sssp(&g, VertexId(u));
                for v in 0..60u32 {
                    assert_eq!(
                        hl.distance(VertexId(u), VertexId(v)),
                        e.dist_to(VertexId(v)),
                        "seed {seed}, pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let d = b.add_vertex(Point::new(2.0, 0.0));
        let e = b.add_vertex(Point::new(3.0, 0.0));
        b.add_edge_with_cost(a, c, 3).unwrap();
        b.add_edge_with_cost(d, e, 4).unwrap();
        let g = b.finish().unwrap();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(a, c), 3);
        assert_eq!(hl.distance(d, e), 4);
        assert_eq!(hl.distance(a, d), INF);
        assert_eq!(hl.distance(c, e), INF);
    }

    #[test]
    fn self_distance_zero_and_symmetry() {
        let g = random_connected_graph(40, 60, 42);
        let hl = HubLabels::build(&g);
        for u in 0..40u32 {
            assert_eq!(hl.distance(VertexId(u), VertexId(u)), 0);
            for v in 0..40u32 {
                assert_eq!(
                    hl.distance(VertexId(u), VertexId(v)),
                    hl.distance(VertexId(v), VertexId(u))
                );
            }
        }
    }

    #[test]
    fn pruning_keeps_labels_small_on_a_path() {
        // On a path graph with the mid vertex ranked first, labels stay
        // tiny; this guards against a regression that disables pruning.
        let n = 101u32;
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_vertex(Point::new(f64::from(i), 0.0));
        }
        for i in 1..n {
            b.add_edge_with_cost(VertexId(i - 1), VertexId(i), 1)
                .unwrap();
        }
        let g = b.finish().unwrap();
        let mut order: Vec<VertexId> = vec![VertexId(n / 2)];
        order.extend((0..n).filter(|&i| i != n / 2).map(VertexId));
        let hl = HubLabels::build_with_order(&g, &order);
        // Without pruning the total label count would be Θ(n²) ≈ 10k;
        // with the mid hub first the analysis gives ≈ n + 2·(n/2)²/2 ≈ 2.7k.
        assert!(
            hl.num_entries() < 5_000,
            "labels too large: {}",
            hl.num_entries()
        );
        // And still exact.
        assert_eq!(hl.distance(VertexId(0), VertexId(100)), 100);
        assert_eq!(hl.distance(VertexId(10), VertexId(60)), 50);
    }

    #[test]
    fn mem_and_avg_size_reporting() {
        let g = random_connected_graph(30, 30, 7);
        let hl = HubLabels::build(&g);
        assert!(hl.num_entries() >= 30); // at least the self entries
        assert!(hl.avg_label_size() >= 1.0);
        assert!(hl.mem_bytes() >= hl.num_entries() * 12);
    }
}
