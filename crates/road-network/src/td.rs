//! Departure-time-aware shortest distances: the time-dependent oracle.
//!
//! PR 5 layered congestion multipliers over a *static* oracle: rush
//! hour stretches schedules, but the path a worker drives is still the
//! free-flow shortest path. This module pushes time-dependence into the
//! metric itself. A [`TdDijkstra`] searches the road network with
//! per-edge **stretched costs**: an edge of free-flow cost `c` entered
//! at absolute time `t` takes `CongestionProfile::leg_time(x, c, t)`,
//! where `x` is the edge's tail (the same per-region semantics routes
//! already use). Because every profile is FIFO by construction
//! (DESIGN.md §7), arrival times along a path are non-decreasing in the
//! departure time, and plain label-setting Dijkstra over earliest
//! arrivals is exact — no label correcting needed.
//!
//! A naive time-dependent Dijkstra per query would be orders of
//! magnitude slower than `HubLabels::distance`, so three layers make it
//! fast:
//!
//! 1. **Goal-directed pruning.** The static hub-label distance
//!    `HubLabels::distance(v, t)` is a *free-flow* lower bound on any
//!    stretched cost (every multiplier is ≥ 1), so it is an admissible
//!    A\* potential. It is also **consistent**: for any edge `(x, y)`
//!    with static cost `c`, `h(x) ≤ c + h(y) ≤ stretched(x, y, ·) +
//!    h(y)` by the triangle inequality of the static metric. Consistent
//!    potentials keep the search label-setting — every vertex settles
//!    once, and the first pop of the target is optimal.
//! 2. **A time-bucketed sharded LRU** ([`TdCachedOracle`]). The profile
//!    is piecewise-constant per bucket, so trips that start *and
//!    finish* inside one bucket see a constant-cost graph; caching
//!    those durations under `(u, v, bucket(depart))` makes within-bucket
//!    reuse **exact**, not approximate (see the cache docs for the
//!    argument). The key is deliberately *asymmetric* and time-keyed —
//!    `dis_at(u, v, t)` and `dis_at(v, u, t)` differ under per-region
//!    profiles, so the static cache's `sym_key` trick would be unsound
//!    here.
//! 3. **Reusable search state.** The engine carries a small pool of
//!    generation-stamped arenas (dist / parent / potential columns plus
//!    a reusable heap), so steady-state queries allocate nothing once
//!    the pool is warm — the same discipline `bench alloc` enforces for
//!    planned insertions.
//!
//! [`TdTravelTimeProvider`] packages the oracle as a
//! [`TravelTimeProvider`], overriding `leg_time_between` / `td_expand`
//! so committed routes **reroute** under congestion instead of merely
//! stretching. With a flat profile every stretched cost equals its
//! static cost, so the TD search degenerates to static Dijkstra and the
//! whole stack is byte-identical to the static oracle — the
//! non-negotiable gate `tests/td_equivalence.rs` pins end-to-end.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
// The pool wants `try_lock` (grab any free arena), which the vendored
// `parking_lot` shim doesn't expose — std's mutex does.
use std::sync::Mutex as PoolMutex;

use parking_lot::Mutex;

use crate::cache::{LruCache, DIS_SHARDS};
use crate::congestion::{CongestionProfile, TravelTimeProvider};
use crate::graph::RoadNetwork;
use crate::hub_labels::HubLabels;
use crate::{cost_add, Cost, VertexId, INF};

/// Departure-time-aware distance / path oracle.
///
/// `dis_at(u, v, t)` is the minimum travel *duration* of any `u → v`
/// path departing at absolute time `t`, under the installed congestion
/// profile; `shortest_path_at` is a path achieving it. Unlike the
/// static [`crate::oracle::DistanceOracle`], the answers here are
/// **asymmetric** (per-region profiles stretch the two directions
/// differently) and depend on `t` — callers must never cache them under
/// a symmetric or time-free key.
pub trait TimeDependentOracle: Send + Sync {
    /// Minimum travel duration `u → v` when departing at `depart`
    /// (absolute centiseconds). [`INF`] when unreachable.
    fn dis_at(&self, u: VertexId, v: VertexId, depart: u64) -> Cost;

    /// A concrete duration-minimal path (inclusive of both endpoints)
    /// when departing at `depart`; `None` when unreachable.
    fn shortest_path_at(&self, u: VertexId, v: VertexId, depart: u64) -> Option<Vec<VertexId>>;

    /// Path and its duration in one query. The default issues two
    /// queries; engines that compute both in one search override it.
    fn path_and_duration_at(
        &self,
        u: VertexId,
        v: VertexId,
        depart: u64,
    ) -> Option<(Cost, Vec<VertexId>)> {
        let p = self.shortest_path_at(u, v, depart)?;
        Some((self.dis_at(u, v, depart), p))
    }
}

macro_rules! forward_td_oracle {
    ($ty:ty) => {
        impl<O: TimeDependentOracle + ?Sized> TimeDependentOracle for $ty {
            fn dis_at(&self, u: VertexId, v: VertexId, depart: u64) -> Cost {
                (**self).dis_at(u, v, depart)
            }
            fn shortest_path_at(
                &self,
                u: VertexId,
                v: VertexId,
                depart: u64,
            ) -> Option<Vec<VertexId>> {
                (**self).shortest_path_at(u, v, depart)
            }
            fn path_and_duration_at(
                &self,
                u: VertexId,
                v: VertexId,
                depart: u64,
            ) -> Option<(Cost, Vec<VertexId>)> {
                (**self).path_and_duration_at(u, v, depart)
            }
        }
    };
}

forward_td_oracle!(&O);
forward_td_oracle!(Box<O>);
forward_td_oracle!(Arc<O>);

/// Cumulative search counters of a [`TdDijkstra`] (the oracle-td bench
/// reports these; the ≥5× node-expansion claim is `settled` ratios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TdSearchStats {
    /// Point-to-point searches run (identity queries excluded).
    pub queries: u64,
    /// Vertices settled (popped non-stale) across all searches — the
    /// "node expansions" goal-directed pruning reduces.
    pub settled: u64,
    /// Edge relaxations that improved a label.
    pub relaxed: u64,
}

impl TdSearchStats {
    /// Difference `self − earlier`, for per-phase accounting.
    pub fn since(&self, earlier: &TdSearchStats) -> TdSearchStats {
        TdSearchStats {
            queries: self.queries - earlier.queries,
            settled: self.settled - earlier.settled,
            relaxed: self.relaxed - earlier.relaxed,
        }
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Generation-stamped search arenas: dist / parent / potential columns
/// cleared in O(1) via an epoch counter, plus a reusable binary heap.
/// One of these per concurrent search; [`TdDijkstra`] pools them.
#[derive(Debug, Default)]
struct SearchState {
    /// Duration label: earliest arrival minus departure.
    dist: Vec<Cost>,
    parent: Vec<u32>,
    /// Memoized A* potential (static hub-label distance to the target).
    pot: Vec<Cost>,
    epoch: Vec<u32>,
    pot_epoch: Vec<u32>,
    current_epoch: u32,
    /// `(f = duration + potential, !duration, vertex)`, min-first.
    /// The `!duration` component breaks `f`-ties toward the *deepest*
    /// label: with a tight potential the search then walks essentially
    /// only the optimal corridor instead of sweeping every equal-`f`
    /// plateau node — correctness is untouched (any tie order pops
    /// optimal labels under a consistent potential), expansion counts
    /// drop sharply.
    heap: BinaryHeap<Reverse<(Cost, Cost, u32)>>,
    settled: u64,
    relaxed: u64,
}

impl SearchState {
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INF);
            self.parent.resize(n, NO_PARENT);
            self.pot.resize(n, 0);
            self.epoch.resize(n, 0);
            self.pot_epoch.resize(n, 0);
        }
    }

    #[inline]
    fn touch(&mut self, i: usize) {
        if self.epoch[i] != self.current_epoch {
            self.epoch[i] = self.current_epoch;
            self.dist[i] = INF;
            self.parent[i] = NO_PARENT;
        }
    }

    #[inline]
    fn potential(&mut self, labels: Option<&HubLabels>, i: usize, target: VertexId) -> Cost {
        match labels {
            None => 0,
            Some(l) => {
                if self.pot_epoch[i] != self.current_epoch {
                    self.pot_epoch[i] = self.current_epoch;
                    self.pot[i] = l.distance(VertexId(i as u32), target);
                }
                self.pot[i]
            }
        }
    }

    /// Label-setting time-dependent A*; returns the duration label of
    /// `t` ([`INF`] when unreachable) with parents filled for
    /// [`SearchState::path_to`]. `s != t` is the caller's invariant.
    fn run(
        &mut self,
        g: &RoadNetwork,
        profile: &CongestionProfile,
        labels: Option<&HubLabels>,
        s: VertexId,
        t: VertexId,
        depart: u64,
    ) -> Cost {
        self.ensure(g.num_vertices());
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            self.epoch.fill(0);
            self.pot_epoch.fill(0);
            self.current_epoch = 1;
        }
        self.heap.clear();
        self.touch(s.idx());
        self.dist[s.idx()] = 0;
        let f0 = self.potential(labels, s.idx(), t);
        if f0 >= INF {
            return INF; // statically disconnected ⇒ TD-disconnected
        }
        self.heap.push(Reverse((f0, !0, s.0)));
        while let Some(Reverse((f, _, v))) = self.heap.pop() {
            let vi = v as usize;
            let d = self.dist[vi];
            // Stale entry: a better label was pushed after this one.
            // `pot` is memoized for every vertex ever pushed this epoch,
            // so reading it here needs no epoch check.
            let pot_v = if labels.is_some() { self.pot[vi] } else { 0 };
            if f > cost_add(d, pot_v) {
                continue;
            }
            self.settled += 1;
            if v == t.0 {
                return d;
            }
            let lo = g.offsets[vi] as usize;
            let hi = g.offsets[vi + 1] as usize;
            for k in lo..hi {
                let n = g.targets[k] as usize;
                let stretched = profile.leg_time(VertexId(v), g.costs[k], depart.saturating_add(d));
                let nd = cost_add(d, stretched);
                self.touch(n);
                if nd < self.dist[n] {
                    self.dist[n] = nd;
                    self.parent[n] = v;
                    let h = self.potential(labels, n, t);
                    self.heap.push(Reverse((cost_add(nd, h), !nd, n as u32)));
                    self.relaxed += 1;
                }
            }
        }
        INF
    }

    /// Reconstructs the path to `t` after [`SearchState::run`].
    fn path_to(&self, t: VertexId) -> Option<Vec<VertexId>> {
        if self.epoch[t.idx()] != self.current_epoch || self.dist[t.idx()] >= INF {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t.0;
        while self.parent[cur as usize] != NO_PARENT {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }
}

/// How many pooled [`SearchState`] arenas a [`TdDijkstra`] carries.
/// Concurrent planner threads grab a free one with `try_lock`; beyond
/// the pool width they serialize on the first slot. Arenas are lazily
/// sized on first use, so idle slots cost nothing.
const STATE_POOL: usize = 8;

/// Time-dependent point-to-point engine over a [`RoadNetwork`] and a
/// [`CongestionProfile`], optionally goal-directed via static hub-label
/// potentials (see the module docs for why those are admissible *and*
/// consistent).
pub struct TdDijkstra {
    g: Arc<RoadNetwork>,
    profile: Arc<CongestionProfile>,
    labels: Option<Arc<HubLabels>>,
    pool: Vec<PoolMutex<SearchState>>,
    queries: AtomicU64,
    settled: AtomicU64,
    relaxed: AtomicU64,
}

impl TdDijkstra {
    /// An undirected (no-potential) TD-Dijkstra — the baseline the
    /// oracle-td bench compares goal-directed search against.
    pub fn new(g: Arc<RoadNetwork>, profile: Arc<CongestionProfile>) -> Self {
        Self::build(g, profile, None)
    }

    /// A goal-directed TD-A*: static hub-label distances to the target
    /// are the admissible free-flow potentials.
    pub fn goal_directed(
        g: Arc<RoadNetwork>,
        profile: Arc<CongestionProfile>,
        labels: Arc<HubLabels>,
    ) -> Self {
        Self::build(g, profile, Some(labels))
    }

    fn build(
        g: Arc<RoadNetwork>,
        profile: Arc<CongestionProfile>,
        labels: Option<Arc<HubLabels>>,
    ) -> Self {
        TdDijkstra {
            g,
            profile,
            labels,
            pool: (0..STATE_POOL)
                .map(|_| PoolMutex::new(SearchState::default()))
                .collect(),
            queries: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            relaxed: AtomicU64::new(0),
        }
    }

    /// The underlying road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.g
    }

    /// The installed congestion profile.
    pub fn profile(&self) -> &Arc<CongestionProfile> {
        &self.profile
    }

    /// Whether searches are goal-directed (hub-label potentials).
    pub fn is_goal_directed(&self) -> bool {
        self.labels.is_some()
    }

    /// Cumulative search counters.
    pub fn stats(&self) -> TdSearchStats {
        TdSearchStats {
            queries: self.queries.load(Ordering::Relaxed),
            settled: self.settled.load(Ordering::Relaxed),
            relaxed: self.relaxed.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters to zero.
    pub fn reset_stats(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.settled.store(0, Ordering::Relaxed);
        self.relaxed.store(0, Ordering::Relaxed);
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut SearchState) -> R) -> R {
        for slot in &self.pool {
            if let Ok(mut state) = slot.try_lock() {
                return f(&mut state);
            }
        }
        f(&mut self.pool[0]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    fn search<R>(
        &self,
        u: VertexId,
        v: VertexId,
        depart: u64,
        extract: impl FnOnce(Cost, &SearchState) -> R,
    ) -> R {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.with_state(|state| {
            let before = (state.settled, state.relaxed);
            let d = state.run(&self.g, &self.profile, self.labels.as_deref(), u, v, depart);
            self.settled
                .fetch_add(state.settled - before.0, Ordering::Relaxed);
            self.relaxed
                .fetch_add(state.relaxed - before.1, Ordering::Relaxed);
            #[cfg(feature = "obs")]
            urpsm_obs::with(|m| {
                m.td_queries.inc();
                m.td_settled.add(state.settled - before.0);
            });
            extract(d, state)
        })
    }
}

impl TimeDependentOracle for TdDijkstra {
    fn dis_at(&self, u: VertexId, v: VertexId, depart: u64) -> Cost {
        if u == v {
            return 0;
        }
        // Flat profile ⇒ stretched costs equal static costs exactly, so
        // the hub labels already hold the answer. This keeps flat CI
        // runs (URPSM_TD_ORACLE=1 with env canaries) near-free while
        // remaining bit-identical to the search it replaces.
        if self.profile.is_flat() {
            if let Some(labels) = &self.labels {
                return labels.distance(u, v);
            }
        }
        self.search(u, v, depart, |d, _| d)
    }

    fn shortest_path_at(&self, u: VertexId, v: VertexId, depart: u64) -> Option<Vec<VertexId>> {
        if u == v {
            return Some(vec![u]);
        }
        self.search(u, v, depart, |_, state| state.path_to(v))
    }

    fn path_and_duration_at(
        &self,
        u: VertexId,
        v: VertexId,
        depart: u64,
    ) -> Option<(Cost, Vec<VertexId>)> {
        if u == v {
            return Some((0, vec![u]));
        }
        self.search(u, v, depart, |d, state| {
            if d >= INF {
                None
            } else {
                state.path_to(v).map(|p| (d, p))
            }
        })
    }
}

/// Cache key for [`TdCachedOracle`]: `(u, v, depart / bucket_len)` —
/// asymmetric source/target pair plus the absolute bucket index.
type TdCacheKey = (u32, u32, u64);

/// Shard index for the asymmetric, time-keyed cache key — the same
/// multiply-high-bits scheme as the static cache's `shard_of`, with the
/// bucket index mixed in so consecutive buckets of a hot pair spread.
#[inline]
fn td_shard_of(key: TdCacheKey) -> usize {
    const SHIFT: u32 = 64 - DIS_SHARDS.trailing_zeros();
    let x =
        ((u64::from(key.0) << 32) | u64::from(key.1)) ^ key.2.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (x.wrapping_mul(0x517c_c1b7_2722_0a95) >> SHIFT) as usize & (DIS_SHARDS - 1)
}

/// Time-bucketed caching decorator for a [`TimeDependentOracle`].
///
/// Distances are cached under the **asymmetric** key `(u, v,
/// depart / bucket_len)` (absolute bucket index — day wraps map to
/// fresh keys, trading a sliver of hit rate for a trivially correct
/// key), sharded [`DIS_SHARDS`] ways like the static
/// [`crate::cache::LruCachedOracle`].
///
/// **Exactness.** The profile is piecewise-constant per bucket and
/// every region switches buckets at the same boundaries, so a trip that
/// departs at `t` and arrives by the bucket end sees every edge at its
/// constant in-bucket cost `⌈c·m/1000⌉` — a static graph that does not
/// depend on *where inside the bucket* the trip starts. Hence:
///
/// * **Insert rule**: cache duration `d` computed at `t₁` only when
///   `t₁ + d ≤ bucket_end` — then `d` is the in-bucket shortest, and
///   optimal overall (any spilling path arrives after the bucket end
///   `≥ t₁ + d`).
/// * **Hit rule**: reuse `d` at `t₂` in the same bucket only when
///   `t₂ + d ≤ bucket_end` — the same constant graph gives the same
///   in-bucket shortest `d`, and the same spilling argument makes it
///   optimal at `t₂` too. Entries failing the check recompute (counted
///   as misses): within-bucket reuse is **exact**, never approximate.
pub struct TdCachedOracle<O> {
    inner: O,
    bucket_len: u64,
    dis_shards: Vec<Mutex<LruCache<TdCacheKey, Cost>>>,
    path_cache: Mutex<LruCache<TdCacheKey, (Cost, Vec<VertexId>)>>,
    dis_hits: AtomicU64,
    dis_misses: AtomicU64,
    path_hits: AtomicU64,
    path_misses: AtomicU64,
}

impl<O: TimeDependentOracle> TdCachedOracle<O> {
    /// Wraps `inner` with `dis_capacity` duration entries (split across
    /// [`DIS_SHARDS`] shards) and `path_capacity` path entries, bucketed
    /// by `profile`'s piecewise-constant grid.
    pub fn new(
        inner: O,
        profile: &CongestionProfile,
        dis_capacity: usize,
        path_capacity: usize,
    ) -> Self {
        let per_shard = dis_capacity.div_ceil(DIS_SHARDS).max(1);
        TdCachedOracle {
            inner,
            bucket_len: profile.bucket_len(),
            dis_shards: (0..DIS_SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            path_cache: Mutex::new(LruCache::new(path_capacity.max(1))),
            dis_hits: AtomicU64::new(0),
            dis_misses: AtomicU64::new(0),
            path_hits: AtomicU64::new(0),
            path_misses: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Duration-cache `(hits, misses)`. A cached entry that fails the
    /// in-bucket reuse check counts as a miss — these are *semantic*
    /// stats (exact answers served from cache), not raw map probes.
    pub fn dis_hit_stats(&self) -> (u64, u64) {
        (
            self.dis_hits.load(Ordering::Relaxed),
            self.dis_misses.load(Ordering::Relaxed),
        )
    }

    /// Path-cache `(hits, misses)` under the same semantics.
    pub fn path_hit_stats(&self) -> (u64, u64) {
        (
            self.path_hits.load(Ordering::Relaxed),
            self.path_misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate memory used by both caches.
    pub fn mem_bytes(&self) -> usize {
        self.dis_shards
            .iter()
            .map(|s| s.lock().mem_bytes())
            .sum::<usize>()
            + self.path_cache.lock().mem_bytes()
    }

    #[inline]
    fn bucket_of(&self, depart: u64) -> (u64, u64) {
        let bucket = depart / self.bucket_len;
        let end = bucket.saturating_add(1).saturating_mul(self.bucket_len);
        (bucket, end)
    }
}

impl<O: TimeDependentOracle> TimeDependentOracle for TdCachedOracle<O> {
    fn dis_at(&self, u: VertexId, v: VertexId, depart: u64) -> Cost {
        if u == v {
            return 0;
        }
        let (bucket, bucket_end) = self.bucket_of(depart);
        let key = (u.0, v.0, bucket);
        let shard = &self.dis_shards[td_shard_of(key)];
        if let Some(&d) = shard.lock().get(&key) {
            if depart.saturating_add(d) <= bucket_end {
                self.dis_hits.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "obs")]
                urpsm_obs::with(|m| {
                    m.td_dis_hits.inc();
                    m.ring.record(
                        urpsm_obs::TraceKind::TdCache,
                        1,
                        u64::from(u.0),
                        u64::from(v.0),
                        bucket,
                    );
                });
                return d;
            }
        }
        self.dis_misses.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        urpsm_obs::with(|m| {
            m.td_dis_misses.inc();
            m.ring.record(
                urpsm_obs::TraceKind::TdCache,
                0,
                u64::from(u.0),
                u64::from(v.0),
                bucket,
            );
        });
        // Lock dropped across the inner query (same benign duplicate-
        // fill race as the static cache: equal values, never wrong).
        let d = self.inner.dis_at(u, v, depart);
        if depart.saturating_add(d) <= bucket_end {
            let _evicted = shard.lock().insert(key, d).is_some();
            #[cfg(feature = "obs")]
            if _evicted {
                urpsm_obs::with(|m| m.td_evictions.inc());
            }
        }
        d
    }

    fn shortest_path_at(&self, u: VertexId, v: VertexId, depart: u64) -> Option<Vec<VertexId>> {
        self.path_and_duration_at(u, v, depart).map(|(_, p)| p)
    }

    fn path_and_duration_at(
        &self,
        u: VertexId,
        v: VertexId,
        depart: u64,
    ) -> Option<(Cost, Vec<VertexId>)> {
        if u == v {
            return Some((0, vec![u]));
        }
        let (bucket, bucket_end) = self.bucket_of(depart);
        let key = (u.0, v.0, bucket);
        {
            let mut cache = self.path_cache.lock();
            if let Some((d, p)) = cache.get(&key) {
                if depart.saturating_add(*d) <= bucket_end {
                    self.path_hits.fetch_add(1, Ordering::Relaxed);
                    #[cfg(feature = "obs")]
                    urpsm_obs::with(|m| m.td_path_hits.inc());
                    return Some((*d, p.clone()));
                }
            }
        }
        self.path_misses.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        urpsm_obs::with(|m| m.td_path_misses.inc());
        let (d, p) = self.inner.path_and_duration_at(u, v, depart)?;
        if depart.saturating_add(d) <= bucket_end {
            let _evicted = self.path_cache.lock().insert(key, (d, p.clone())).is_some();
            #[cfg(feature = "obs")]
            if _evicted {
                urpsm_obs::with(|m| m.td_evictions.inc());
            }
        }
        Some((d, p))
    }
}

/// Smallest static cost of a direct edge `x → y` (`None` when the edge
/// does not exist). With parallel edges the minimum static cost is also
/// the minimum stretched cost — stretching is monotone in the base — so
/// this recovers exactly the edge the TD search relaxed.
fn min_edge_cost(g: &RoadNetwork, x: VertexId, y: VertexId) -> Option<Cost> {
    let mut best: Option<Cost> = None;
    for (n, c) in g.neighbors(x) {
        if n == y {
            best = Some(best.map_or(c, |b| b.min(c)));
        }
    }
    best
}

/// A [`TravelTimeProvider`] backed by the true time-dependent oracle:
/// committed routes *reroute* under congestion instead of stretching
/// along the free-flow path.
///
/// * `leg_time` keeps the PR-5 overlay semantics (it times a free-flow
///   *offset*, used for mid-leg interpolation on static paths).
/// * `leg_time_between` answers with the **rerouted** duration
///   `max(base, dis_at(from, to, depart))` — the clamp keeps the
///   conservation contract (`≥ base`) for callers whose `base` is not
///   exactly the static `dis(from, to)`, and all four provider
///   contracts hold (FIFO of `dis_at` survives the max with a
///   constant).
/// * `td_expand` emits the rerouted leg's concrete vertices with their
///   arrival times, with cumulative free-flow offsets *normalized* so
///   the last triple carries exactly `base` — the driven ledger
///   (`driven == Σ planned`, in free-flow units) stays exact even
///   though the driven path's static length may exceed `base`.
///
/// With a flat profile every method degenerates to the identity /
/// static behavior, bit for bit.
pub struct TdTravelTimeProvider {
    g: Arc<RoadNetwork>,
    profile: Arc<CongestionProfile>,
    oracle: TdCachedOracle<TdDijkstra>,
    name: String,
}

/// Default capacity of the time-keyed duration cache.
pub const TD_DIS_CACHE: usize = 1 << 18;
/// Default capacity of the time-keyed path cache.
pub const TD_PATH_CACHE: usize = 1 << 12;

impl TdTravelTimeProvider {
    /// Builds the provider over `g` and `profile`; pass the oracle's
    /// hub labels to make the searches goal-directed (strongly
    /// recommended — this is the ≥5× node-expansion layer).
    pub fn new(
        g: Arc<RoadNetwork>,
        profile: Arc<CongestionProfile>,
        labels: Option<Arc<HubLabels>>,
    ) -> Self {
        let engine = match labels {
            Some(l) => TdDijkstra::goal_directed(g.clone(), profile.clone(), l),
            None => TdDijkstra::new(g.clone(), profile.clone()),
        };
        let oracle = TdCachedOracle::new(engine, &profile, TD_DIS_CACHE, TD_PATH_CACHE);
        let name = format!("td:{}", TravelTimeProvider::name(profile.as_ref()));
        TdTravelTimeProvider {
            g,
            profile,
            oracle,
            name,
        }
    }

    /// The cached TD oracle (hit rates, search stats).
    pub fn oracle(&self) -> &TdCachedOracle<TdDijkstra> {
        &self.oracle
    }

    /// The wrapped congestion profile.
    pub fn profile(&self) -> &Arc<CongestionProfile> {
        &self.profile
    }

    #[inline]
    fn static_case(&self, base: Cost, depart: u64) -> bool {
        base == 0 || base >= INF || depart >= INF || self.profile.is_flat()
    }
}

impl TravelTimeProvider for TdTravelTimeProvider {
    fn leg_time(&self, from: VertexId, base: Cost, depart: u64) -> Cost {
        self.profile.leg_time(from, base, depart)
    }

    fn is_flat(&self) -> bool {
        self.profile.is_flat()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn leg_time_between(&self, from: VertexId, to: VertexId, base: Cost, depart: u64) -> Cost {
        if self.static_case(base, depart) || from == to {
            // Identity / clamp cases, including the flat profile: the
            // overlay is the identity there, which is what the flat
            // byte-identity gate requires.
            return self.profile.leg_time(from, base, depart);
        }
        let d = self.oracle.dis_at(from, to, depart);
        d.max(base).min(INF)
    }

    fn td_expand(
        &self,
        from: VertexId,
        to: VertexId,
        base: Cost,
        depart: u64,
        emit: &mut dyn FnMut(VertexId, u64, Cost),
    ) -> bool {
        if self.static_case(base, depart) || from == to {
            return false; // static expansion is exact here
        }
        let Some((dur, path)) = self.oracle.path_and_duration_at(from, to, depart) else {
            return false;
        };
        if path.len() < 2 || path[0] != from || *path.last().expect("non-empty") != to {
            return false;
        }
        // Pre-validate every edge so emission never starts on a path
        // we cannot finish walking.
        let mut static_total: Cost = 0;
        for pair in path.windows(2) {
            match min_edge_cost(&self.g, pair[0], pair[1]) {
                Some(c) => static_total = cost_add(static_total, c),
                None => return false,
            }
        }
        let arrival = depart.saturating_add(dur.max(base).min(INF));
        let mut t = depart;
        let mut prefix: Cost = 0;
        let last = path.len() - 2;
        for (i, pair) in path.windows(2).enumerate() {
            let c = min_edge_cost(&self.g, pair[0], pair[1]).expect("validated above");
            t = t.saturating_add(self.profile.leg_time(pair[0], c, t));
            prefix = cost_add(prefix, c);
            if i == last {
                // The contract pins the final triple exactly.
                emit(to, arrival, base);
            } else {
                // Cumulative free-flow offsets scaled so they end at
                // `base` even when the rerouted path is statically
                // longer: monotone, and the ledger credits exactly
                // `base` for the whole leg.
                let off = if static_total == 0 {
                    0
                } else {
                    ((u128::from(base) * u128::from(prefix)) / u128::from(static_total)) as u64
                };
                emit(pair[1], t, off.min(base));
            }
        }
        true
    }
}

/// Reads the `URPSM_TD_ORACLE` environment variable, mirroring
/// `URPSM_THREADS` / `URPSM_SHARDS` / `URPSM_CONGESTION`: `1`, `true`
/// or `on` route committed legs through the time-dependent oracle
/// (`SimConfig::td_oracle`); anything else keeps the PR-5 overlay.
pub fn td_oracle_from_env() -> bool {
    matches!(
        std::env::var("URPSM_TD_ORACLE").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geo::Point;
    use crate::hub_labels::HubLabels;
    use crate::oracle::DistanceOracle;
    use crate::oracle::HubLabelOracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Time-expanded reference: label-correcting Bellman–Ford over
    /// earliest arrivals. Algorithmically disjoint from the engine
    /// under test (no heap, no potentials, no early exit).
    fn reference_dis_at(
        g: &RoadNetwork,
        profile: &CongestionProfile,
        s: VertexId,
        t: VertexId,
        depart: u64,
    ) -> Cost {
        const UNSEEN: u64 = u64::MAX;
        let mut arr = vec![UNSEEN; g.num_vertices()];
        arr[s.idx()] = depart;
        loop {
            let mut changed = false;
            for v in 0..g.num_vertices() {
                if arr[v] == UNSEEN {
                    continue;
                }
                let tv = arr[v];
                for (w, c) in g.neighbors(VertexId(v as u32)) {
                    let a = tv.saturating_add(profile.leg_time(VertexId(v as u32), c, tv));
                    if a < arr[w.idx()] {
                        arr[w.idx()] = a;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if arr[t.idx()] == UNSEEN {
            INF
        } else {
            (arr[t.idx()] - depart).min(INF)
        }
    }

    fn random_network(rng: &mut StdRng, n: usize, extra_edges: usize) -> Arc<RoadNetwork> {
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_vertex(Point::new(
                (i % 8) as f64 * 50.0 + rng.gen_range(0.0..10.0),
                (i / 8) as f64 * 50.0 + rng.gen_range(0.0..10.0),
            ));
        }
        // Spanning chain keeps it connected; extra random chords.
        for i in 1..n as u32 {
            let j = rng.gen_range(0..i);
            b.add_edge_with_cost(VertexId(i), VertexId(j), rng.gen_range(50..2_000))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                let _ = b.add_edge_with_cost(VertexId(u), VertexId(v), rng.gen_range(50..2_000));
            }
        }
        Arc::new(b.finish().unwrap())
    }

    fn random_profile(rng: &mut StdRng, n_vertices: usize) -> Arc<CongestionProfile> {
        let buckets = rng.gen_range(1..6usize);
        let bucket_len = rng.gen_range(1..40u64) * 100;
        let regions = rng.gen_range(1..4usize);
        let tables: Vec<Vec<u32>> = (0..regions)
            .map(|_| (0..buckets).map(|_| rng.gen_range(1000..3000)).collect())
            .collect();
        let vertex_region: Vec<u16> = (0..n_vertices)
            .map(|_| rng.gen_range(0..regions as u16))
            .collect();
        Arc::new(CongestionProfile::per_region("prop", bucket_len, tables, vertex_region).unwrap())
    }

    #[test]
    fn td_dijkstra_matches_time_expanded_reference() {
        let mut rng = StdRng::seed_from_u64(0xD15_7A9CE);
        for case in 0..25 {
            let n = rng.gen_range(6..28usize);
            let g = random_network(&mut rng, n, n / 2);
            let profile = random_profile(&mut rng, n);
            let plain = TdDijkstra::new(g.clone(), profile.clone());
            for _ in 0..12 {
                let u = VertexId(rng.gen_range(0..n as u32));
                let v = VertexId(rng.gen_range(0..n as u32));
                let depart = rng.gen_range(0..4 * profile.period());
                let got = plain.dis_at(u, v, depart);
                let want = reference_dis_at(&g, &profile, u, v, depart);
                assert_eq!(got, want, "case {case}: dis_at({u},{v},{depart})");
            }
        }
    }

    #[test]
    fn goal_directed_matches_plain_with_fewer_expansions() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 120;
        let g = random_network(&mut rng, n, n);
        let profile = random_profile(&mut rng, n);
        let labels = Arc::new(HubLabels::build(&g));
        let plain = TdDijkstra::new(g.clone(), profile.clone());
        let astar = TdDijkstra::goal_directed(g.clone(), profile.clone(), labels);
        for _ in 0..80 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            let depart = rng.gen_range(0..2 * profile.period());
            assert_eq!(
                plain.dis_at(u, v, depart),
                astar.dis_at(u, v, depart),
                "distances must agree ({u},{v},{depart})"
            );
        }
        let (p, a) = (plain.stats(), astar.stats());
        assert_eq!(p.queries, a.queries);
        assert!(
            a.settled < p.settled,
            "goal-directed search must expand fewer nodes ({} vs {})",
            a.settled,
            p.settled
        );
    }

    #[test]
    fn td_paths_realize_their_durations() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let g = random_network(&mut rng, n, n);
        let profile = random_profile(&mut rng, n);
        let engine = TdDijkstra::new(g.clone(), profile.clone());
        for _ in 0..60 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            let depart = rng.gen_range(0..2 * profile.period());
            let Some((d, path)) = engine.path_and_duration_at(u, v, depart) else {
                continue;
            };
            assert_eq!(*path.first().unwrap(), u);
            assert_eq!(*path.last().unwrap(), v);
            // Walking the path edge by edge reproduces the duration.
            let mut t = depart;
            for pair in path.windows(2) {
                let c = min_edge_cost(&g, pair[0], pair[1]).expect("path edge exists");
                t += profile.leg_time(pair[0], c, t);
            }
            assert_eq!(t - depart, d, "path walk must realize dis_at");
        }
    }

    #[test]
    fn flat_profile_equals_static_oracle_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 48;
        let g = random_network(&mut rng, n, n);
        let flat = Arc::new(CongestionProfile::flat());
        let labels = Arc::new(HubLabels::build(&g));
        let plain = TdDijkstra::new(g.clone(), flat.clone());
        let astar = TdDijkstra::goal_directed(g.clone(), flat.clone(), labels.clone());
        let cached = TdCachedOracle::new(
            TdDijkstra::goal_directed(g.clone(), flat.clone(), labels.clone()),
            &flat,
            1 << 10,
            64,
        );
        let static_oracle = HubLabelOracle::build(g.clone());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let (u, v) = (VertexId(u), VertexId(v));
                let want = static_oracle.dis(u, v);
                for depart in [0u64, 123_456, 3 * crate::congestion::HOUR_CS] {
                    assert_eq!(plain.dis_at(u, v, depart), want);
                    assert_eq!(astar.dis_at(u, v, depart), want);
                    assert_eq!(cached.dis_at(u, v, depart), want);
                }
            }
        }
    }

    #[test]
    fn cache_reuse_is_exact_and_time_keyed() {
        // Two regions with different evening multipliers make dis_at
        // asymmetric — the very case `sym_key` caching would corrupt.
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(100.0, 0.0));
        b.add_edge_with_cost(a, c, 10_000).unwrap();
        let g = Arc::new(b.finish().unwrap());
        let profile = Arc::new(
            CongestionProfile::per_region(
                "asym",
                crate::congestion::HOUR_CS,
                vec![vec![1000, 2000], vec![1000, 4000]],
                vec![0, 1],
            )
            .unwrap(),
        );
        let cached = TdCachedOracle::new(
            TdDijkstra::new(g.clone(), profile.clone()),
            &profile,
            256,
            16,
        );
        let h = crate::congestion::HOUR_CS;
        // Second bucket: a→c stretches by region 0 (2×), c→a by region 1 (4×).
        assert_eq!(cached.dis_at(a, c, h), 20_000);
        assert_eq!(cached.dis_at(c, a, h), 40_000);
        assert_eq!(cached.dis_hit_stats(), (0, 2), "distinct asymmetric keys");
        // Same bucket, in-bucket completion: exact hits.
        assert_eq!(cached.dis_at(a, c, h + 1_000), 20_000);
        assert_eq!(cached.dis_at(c, a, h + 1_000), 40_000);
        assert_eq!(cached.dis_hit_stats(), (2, 2));
        // Departure whose cached duration would spill past the bucket
        // end: the hit is refused and the trip recomputed exactly.
        let late = 2 * h - 10_000; // 20_000 > 10_000 remaining
        let exact = cached.dis_at(a, c, late);
        let engine = TdDijkstra::new(g.clone(), profile.clone());
        assert_eq!(exact, engine.dis_at(a, c, late));
        assert_eq!(cached.dis_hit_stats(), (2, 3), "spilling reuse refused");
        // Different bucket: different key, fresh computation.
        assert_eq!(cached.dis_at(a, c, 0), 10_000);
        assert_eq!(cached.dis_hit_stats(), (2, 4));
    }

    #[test]
    fn provider_contracts_hold() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 30;
        let g = random_network(&mut rng, n, n / 2);
        let profile = random_profile(&mut rng, n);
        let labels = Arc::new(HubLabels::build(&g));
        let p = TdTravelTimeProvider::new(g.clone(), profile.clone(), Some(labels));
        let static_dis = |u: VertexId, v: VertexId| {
            let mut e = crate::dijkstra::DijkstraEngine::for_network(&g);
            e.distance(&g, u, v)
        };
        for _ in 0..40 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u == v {
                continue;
            }
            let base = static_dis(u, v);
            // Identity at zero and INF pass-through.
            assert_eq!(p.leg_time_between(u, v, 0, 500), 0);
            assert_eq!(p.leg_time_between(u, v, INF, 500), INF);
            // Conservation + FIFO across a day of departures.
            let mut last_arrival = 0u64;
            let mut t = 0u64;
            while t < 2 * profile.period() {
                let lt = p.leg_time_between(u, v, base, t);
                assert!(lt >= base, "conservation broke at t={t}");
                let arrival = t + lt;
                assert!(arrival >= last_arrival, "FIFO broke at t={t}");
                last_arrival = arrival;
                t += 997;
            }
        }
    }

    #[test]
    fn td_expand_emits_a_consistent_leg() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 36;
        let g = random_network(&mut rng, n, n);
        let profile = random_profile(&mut rng, n);
        let p = TdTravelTimeProvider::new(g.clone(), profile.clone(), None);
        let mut checked = 0;
        for _ in 0..60 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u == v {
                continue;
            }
            let mut e = crate::dijkstra::DijkstraEngine::for_network(&g);
            let base = e.distance(&g, u, v);
            if base == 0 || base >= INF {
                continue;
            }
            let depart = rng.gen_range(0..2 * profile.period());
            let mut triples: Vec<(VertexId, u64, Cost)> = Vec::new();
            let ok = p.td_expand(u, v, base, depart, &mut |w, at, off| {
                triples.push((w, at, off));
            });
            assert!(ok, "non-degenerate legs must expand");
            let lt = p.leg_time_between(u, v, base, depart);
            let last = *triples.last().unwrap();
            assert_eq!(last.0, v);
            assert_eq!(last.1, depart + lt, "final arrival pins the schedule");
            assert_eq!(last.2, base, "final offset pins the ledger");
            let mut prev_at = depart;
            let mut prev_off = 0;
            for &(_, at, off) in &triples {
                assert!(at >= prev_at, "arrivals must be monotone");
                assert!(off >= prev_off, "offsets must be monotone");
                assert!(off <= base);
                prev_at = at;
                prev_off = off;
            }
            checked += 1;
        }
        assert!(checked > 10, "test must exercise real legs");
    }

    #[test]
    fn flat_provider_never_expands_or_stretches() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_network(&mut rng, 12, 6);
        let flat = Arc::new(CongestionProfile::flat());
        let p = TdTravelTimeProvider::new(g.clone(), flat, None);
        assert!(p.is_flat());
        assert_eq!(p.leg_time_between(VertexId(0), VertexId(5), 777, 123), 777);
        let expanded = p.td_expand(VertexId(0), VertexId(5), 777, 123, &mut |_, _, _| {
            panic!("flat provider must not emit")
        });
        assert!(!expanded, "flat falls back to static expansion");
    }

    #[test]
    fn env_flag_parses() {
        // Sequential writes only (tests in this module don't race on
        // this variable).
        std::env::remove_var("URPSM_TD_ORACLE");
        assert!(!td_oracle_from_env());
        std::env::set_var("URPSM_TD_ORACLE", "1");
        assert!(td_oracle_from_env());
        std::env::set_var("URPSM_TD_ORACLE", "on");
        assert!(td_oracle_from_env());
        std::env::set_var("URPSM_TD_ORACLE", "0");
        assert!(!td_oracle_from_env());
        std::env::remove_var("URPSM_TD_ORACLE");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// TD-Dijkstra (plain and goal-directed) is exactly the
            /// time-expanded reference on random graphs × random FIFO
            /// profiles, and pruning never expands more nodes.
            #[test]
            fn td_search_equals_reference(
                seed in 0u64..1_000_000,
                n in 5usize..24,
                queries in 2usize..8,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = random_network(&mut rng, n, n / 2);
                let profile = random_profile(&mut rng, n);
                let labels = Arc::new(HubLabels::build(&g));
                let plain = TdDijkstra::new(g.clone(), profile.clone());
                let astar =
                    TdDijkstra::goal_directed(g.clone(), profile.clone(), labels);
                for _ in 0..queries {
                    let u = VertexId(rng.gen_range(0..n as u32));
                    let v = VertexId(rng.gen_range(0..n as u32));
                    let depart = rng.gen_range(0..3 * profile.period());
                    let want = reference_dis_at(&g, &profile, u, v, depart);
                    prop_assert_eq!(plain.dis_at(u, v, depart), want);
                    prop_assert_eq!(astar.dis_at(u, v, depart), want);
                }
                let (p, a) = (plain.stats(), astar.stats());
                prop_assert!(a.settled <= p.settled);
            }

            /// The time-bucketed cache is transparent: cached answers
            /// equal uncached answers for arbitrary query interleavings.
            #[test]
            fn td_cache_is_transparent(
                seed in 0u64..1_000_000,
                n in 5usize..20,
                queries in 4usize..24,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = random_network(&mut rng, n, n / 2);
                let profile = random_profile(&mut rng, n);
                let reference = TdDijkstra::new(g.clone(), profile.clone());
                let cached = TdCachedOracle::new(
                    TdDijkstra::new(g.clone(), profile.clone()),
                    &profile,
                    64,
                    16,
                );
                // Few distinct endpoints + clustered departures force
                // plenty of genuine cache reuse.
                let hot: Vec<u32> =
                    (0..4).map(|_| rng.gen_range(0..n as u32)).collect();
                for _ in 0..queries {
                    let u = VertexId(hot[rng.gen_range(0..hot.len())]);
                    let v = VertexId(hot[rng.gen_range(0..hot.len())]);
                    let depart = rng.gen_range(0..2 * profile.period());
                    for dt in [0u64, 1, 50, 1_000] {
                        let t = depart + dt;
                        prop_assert_eq!(
                            cached.dis_at(u, v, t),
                            reference.dis_at(u, v, t),
                            "cache must be transparent at t={}", t
                        );
                    }
                }
            }
        }
    }
}
