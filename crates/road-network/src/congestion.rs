//! Time-dependent travel times: congestion profiles over a static oracle.
//!
//! The URPSM paper assumes a *static* distance oracle — `dis(u, v)` is
//! the free-flow travel time, independent of when the trip starts. Real
//! cities disagree twice a day. This module layers a piecewise-constant
//! **congestion profile** over any static metric: the day is cut into
//! fixed buckets, each bucket (optionally per grid-region) carries a
//! speed *multiplier* `m ≥ 1`, and a leg of free-flow cost `D` departing
//! at `t` takes however long it takes to accumulate `D` units of
//! progress at rate `1/m(t)`.
//!
//! Two properties hold **by construction** (DESIGN.md §7):
//!
//! * **FIFO (no overtaking).** Arrival time is the solution of
//!   `∫_t^{T} 1/m(s) ds = D` with `1/m > 0`, which is strictly
//!   increasing in the departure time: leaving later never means
//!   arriving earlier. The integer implementation preserves this — see
//!   [`CongestionProfile::leg_time`].
//! * **Static costs are admissible lower bounds.** With every
//!   multiplier `≥ 1`, progress is never faster than free flow, so
//!   `leg_time(u, D, t) ≥ D` for every `t`. Every Euclidean / static
//!   bound the planners use (`euc ≤ dis ≤` stretched time) keeps
//!   underestimating, and the flat profile (`m ≡ 1`) is the *identity*:
//!   `leg_time(u, D, t) = D` exactly, bit for bit.
//!
//! The provider deliberately works on **leg base costs**, not vertex
//! pairs: callers pass `D = dis(u, v)` (which routes already cache in
//! their `leg[]` arrays, Lemma 7) and get back the stretched travel
//! time. No additional shortest-distance queries are ever issued, and
//! the economics of the system (planned / driven / freed distance) stay
//! in free-flow units — only *schedules* stretch.

use crate::geo::{BoundingBox, Point};
use crate::{Cost, VertexId, INF};

/// One hour in the centisecond cost unit.
pub const HOUR_CS: u64 = 360_000;

/// Largest accepted multiplier (8×): keeps the per-bucket progress
/// arithmetic comfortably inside `u64` and guarantees the integration
/// loop advances by at least one progress unit per bucket.
pub const MAX_MULTIPLIER_PM: u32 = 8_000;

/// Departure-time-aware travel times for route legs.
///
/// Implementations must be deterministic pure functions of their inputs
/// (schedules are rebuilt from them on every route mutation, at every
/// thread and shard width) and must satisfy, for every `from`:
///
/// * **identity at zero**: `leg_time(from, 0, t) == 0`,
/// * **conservation**: `leg_time(from, base, t) >= base`
///   (multipliers are `≥ 1`; static plans stay admissible),
/// * **FIFO**: `t1 <= t2  ⇒  t1 + leg_time(from, base, t1) <=
///   t2 + leg_time(from, base, t2)`,
/// * **monotonicity in base**: `b1 <= b2 ⇒ leg_time(from, b1, t) <=
///   leg_time(from, b2, t)` (cancellation bridging may only shrink
///   schedules).
pub trait TravelTimeProvider: Send + Sync {
    /// Travel time of a leg with free-flow cost `base` that starts at
    /// vertex `from` and departs at time `depart`. Must return `base`
    /// unchanged when `base` is `0` or `>= INF`.
    fn leg_time(&self, from: VertexId, base: Cost, depart: u64) -> Cost;

    /// `true` when this provider is the identity (every multiplier is
    /// exactly 1). Callers may use this to skip feasibility re-checks —
    /// a flat provider can never change a schedule.
    fn is_flat(&self) -> bool;

    /// Human-readable profile name (experiment tables, logs).
    fn name(&self) -> &str;

    /// Destination-aware variant of [`TravelTimeProvider::leg_time`]:
    /// the travel time of a leg from `from` to `to` with free-flow cost
    /// `base`, departing at `depart`. The default ignores `to` and
    /// forwards to `leg_time`, which keeps every PR-5 profile overlay
    /// byte-identical; providers backed by a true time-dependent oracle
    /// (see [`crate::td`]) override it to *reroute* — the returned time
    /// follows the path that is shortest at `depart`, not the free-flow
    /// path. The same four contracts apply (identity at zero,
    /// conservation, FIFO, monotonicity in base) for every `(from, to)`.
    fn leg_time_between(&self, from: VertexId, _to: VertexId, base: Cost, depart: u64) -> Cost {
        self.leg_time(from, base, depart)
    }

    /// Path-level expansion hook for worker motion. A provider that
    /// reroutes (overrides [`TravelTimeProvider::leg_time_between`])
    /// must also describe *which* vertices the leg now visits:
    /// implementations emit `(vertex, arrival_time, cumulative
    /// free-flow offset)` for every vertex after `from` — the last
    /// triple being exactly `(to, depart + leg_time_between(from, to,
    /// base, depart), base)` — and return `true`. Returning `false`
    /// (the default) tells the caller to expand the *static* shortest
    /// path instead, which is correct exactly when `leg_time_between`
    /// keeps the default free-flow-path semantics.
    fn td_expand(
        &self,
        _from: VertexId,
        _to: VertexId,
        _base: Cost,
        _depart: u64,
        _emit: &mut dyn FnMut(VertexId, u64, Cost),
    ) -> bool {
        false
    }
}

/// A piecewise-constant congestion profile: per time-of-day bucket
/// speed multipliers, optionally distinct per grid-region.
///
/// Multipliers are stored in per-mille (`1000` = free flow, `1700` =
/// 1.7× travel time) so every schedule computation is exact integer
/// arithmetic — the same inputs produce the same bit pattern on every
/// platform, which is what the byte-identical differential suites
/// (`tests/congestion_equivalence.rs`) pin.
#[derive(Debug, Clone)]
pub struct CongestionProfile {
    name: String,
    /// Bucket length in centiseconds; the profile cycles with period
    /// `bucket_len * multipliers_pm[0].len()`.
    bucket_len: u64,
    /// `multipliers_pm[region][bucket]`, all in `1000..=MAX_MULTIPLIER_PM`.
    /// Every region table has the same length.
    multipliers_pm: Vec<Vec<u32>>,
    /// `vertex -> region` (empty ⇒ every vertex is region 0).
    vertex_region: Vec<u16>,
    /// Cached: every multiplier is exactly 1000.
    flat: bool,
}

/// Why a profile definition was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// No buckets (or no regions) were supplied.
    Empty,
    /// A multiplier is below 1.0 — that would break the admissibility
    /// of every static lower bound (DESIGN.md §7).
    BelowOne {
        /// The offending per-mille value.
        found: u32,
    },
    /// A multiplier exceeds [`MAX_MULTIPLIER_PM`].
    TooLarge {
        /// The offending per-mille value.
        found: u32,
    },
    /// The bucket is shorter than 1 second — the integration loop
    /// needs room to make progress inside every bucket.
    BucketTooShort,
    /// Region tables disagree on the number of buckets.
    RaggedRegions,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Empty => write!(f, "profile needs at least one region and bucket"),
            ProfileError::BelowOne { found } => write!(
                f,
                "multiplier {found}‰ < 1000‰ would break lower-bound admissibility"
            ),
            ProfileError::TooLarge { found } => {
                write!(f, "multiplier {found}‰ exceeds {MAX_MULTIPLIER_PM}‰")
            }
            ProfileError::BucketTooShort => write!(f, "bucket must be at least 100 cs"),
            ProfileError::RaggedRegions => write!(f, "all regions need the same bucket count"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl CongestionProfile {
    /// The identity profile: one all-day bucket at exactly 1×. Runs
    /// with this profile are byte-identical to runs with no profile at
    /// all (pinned by `tests/congestion_equivalence.rs`).
    pub fn flat() -> Self {
        CongestionProfile {
            name: "flat".to_string(),
            bucket_len: 24 * HOUR_CS,
            multipliers_pm: vec![vec![1000]],
            vertex_region: Vec::new(),
            flat: true,
        }
    }

    /// A single-region profile from per-bucket multipliers (as floats,
    /// converted to per-mille). `bucket_len` is in centiseconds.
    pub fn uniform(name: &str, bucket_len: u64, multipliers: &[f64]) -> Result<Self, ProfileError> {
        let pm: Vec<u32> = multipliers
            .iter()
            .map(|&m| (m * 1000.0).round() as u32)
            .collect();
        Self::per_region(name, bucket_len, vec![pm], Vec::new())
    }

    /// A constant all-day multiplier (handy for tests: every leg takes
    /// exactly `ceil(base · m)` regardless of departure time).
    pub fn constant(name: &str, multiplier: f64) -> Result<Self, ProfileError> {
        Self::uniform(name, 24 * HOUR_CS, &[multiplier])
    }

    /// The general constructor: per-region bucket tables plus a
    /// per-vertex region map (empty map ⇒ region 0 everywhere; vertices
    /// beyond the map's length also fall back to region 0).
    pub fn per_region(
        name: &str,
        bucket_len: u64,
        multipliers_pm: Vec<Vec<u32>>,
        vertex_region: Vec<u16>,
    ) -> Result<Self, ProfileError> {
        if multipliers_pm.is_empty() || multipliers_pm[0].is_empty() {
            return Err(ProfileError::Empty);
        }
        if bucket_len < 100 {
            return Err(ProfileError::BucketTooShort);
        }
        let buckets = multipliers_pm[0].len();
        for table in &multipliers_pm {
            if table.len() != buckets {
                return Err(ProfileError::RaggedRegions);
            }
            for &m in table {
                if m < 1000 {
                    return Err(ProfileError::BelowOne { found: m });
                }
                if m > MAX_MULTIPLIER_PM {
                    return Err(ProfileError::TooLarge { found: m });
                }
            }
        }
        let flat = multipliers_pm.iter().all(|t| t.iter().all(|&m| m == 1000));
        let max_region = multipliers_pm.len() - 1;
        let mut vertex_region = vertex_region;
        for r in &mut vertex_region {
            *r = (*r).min(max_region as u16);
        }
        Ok(CongestionProfile {
            name: name.to_string(),
            bucket_len,
            multipliers_pm,
            vertex_region,
            flat,
        })
    }

    /// The two-peak Chengdu-style day: 24 hourly buckets, a morning
    /// peak around 08:00 and a taller evening peak around 18:00, calm
    /// shoulders, free flow at night — the supply-side mirror of the
    /// demand generator's 25% / 30% rush-hour arrival split.
    pub fn chengdu_two_peak() -> Self {
        let mut pm = vec![1000u32; 24];
        pm[7] = 1300;
        pm[8] = 1700;
        pm[9] = 1350;
        pm[16] = 1200;
        pm[17] = 1600;
        pm[18] = 1750;
        pm[19] = 1300;
        Self::per_region("chengdu-2peak", HOUR_CS, vec![pm], Vec::new())
            .expect("preset is well-formed")
    }

    /// Assigns every vertex a region on an `nx × ny` lattice over the
    /// points' bounding box (the same square-cut idea as the dispatch
    /// plane's `ShardMap`), for building per-region profiles where,
    /// say, the downtown core jams harder than the suburbs.
    pub fn regionize(points: &[Point], nx: usize, ny: usize) -> Vec<u16> {
        let (nx, ny) = (nx.max(1), ny.max(1));
        let bbox = BoundingBox::around(points.iter().copied());
        let w = (bbox.max.x - bbox.min.x).max(f64::MIN_POSITIVE);
        let h = (bbox.max.y - bbox.min.y).max(f64::MIN_POSITIVE);
        points
            .iter()
            .map(|p| {
                let ix = (((p.x - bbox.min.x) / w * nx as f64) as usize).min(nx - 1);
                let iy = (((p.y - bbox.min.y) / h * ny as f64) as usize).min(ny - 1);
                (iy * nx + ix) as u16
            })
            .collect()
    }

    /// The profile's day length in centiseconds.
    pub fn period(&self) -> u64 {
        self.bucket_len * self.multipliers_pm[0].len() as u64
    }

    /// Bucket length in centiseconds. The profile is piecewise-constant
    /// per bucket, which is what makes the time-bucketed TD cache
    /// (`road_network::td`) *exact* rather than approximate.
    pub fn bucket_len(&self) -> u64 {
        self.bucket_len
    }

    /// Number of buckets per period (day).
    pub fn num_buckets(&self) -> usize {
        self.multipliers_pm[0].len()
    }

    /// The largest multiplier anywhere in the profile (per-mille).
    pub fn max_multiplier_pm(&self) -> u32 {
        self.multipliers_pm
            .iter()
            .flat_map(|t| t.iter().copied())
            .max()
            .unwrap_or(1000)
    }

    /// The multiplier in force for `region` at time `t` (per-mille).
    #[inline]
    fn multiplier_pm(&self, region: usize, t: u64) -> u64 {
        let table = &self.multipliers_pm[region];
        let bucket = ((t / self.bucket_len) as usize) % table.len();
        u64::from(table[bucket])
    }

    #[inline]
    fn region_of(&self, v: VertexId) -> usize {
        self.vertex_region
            .get(v.idx())
            .map_or(0, |&r| usize::from(r))
    }
}

/// Reads the `URPSM_CONGESTION` environment variable into a profile,
/// mirroring `URPSM_THREADS` / `URPSM_SHARDS`: unset, empty, `off` or
/// `none` mean no profile (free flow, the pre-congestion code path);
/// `flat` installs the explicit identity profile (useful as an env
/// canary — it must change nothing); `chengdu-2peak` installs the
/// two-peak preset. Unknown values fall back to no profile.
pub fn congestion_from_env() -> Option<std::sync::Arc<CongestionProfile>> {
    let v = std::env::var("URPSM_CONGESTION").ok()?;
    match v.trim() {
        "flat" => Some(std::sync::Arc::new(CongestionProfile::flat())),
        "chengdu-2peak" => Some(std::sync::Arc::new(CongestionProfile::chengdu_two_peak())),
        _ => None,
    }
}

impl TravelTimeProvider for CongestionProfile {
    /// Integrates progress through the bucket sequence.
    ///
    /// Inside a bucket with multiplier `m`, `Δt` wall-clock time covers
    /// `⌊Δt · 1000 / m⌋` progress, and finishing `p` remaining progress
    /// takes `⌈p · m / 1000⌉` time. FIFO survives the rounding: a leg
    /// that finishes within its bucket arrives no later than the bucket
    /// end (`p ≤ ⌊Δt·1000/m⌋ ⇒ ⌈p·m/1000⌉ ≤ Δt`), while any later
    /// departure that spills over arrives after it.
    fn leg_time(&self, from: VertexId, base: Cost, depart: u64) -> Cost {
        if base == 0 || base >= INF || depart >= INF {
            return base.min(INF);
        }
        if self.flat {
            return base;
        }
        let region = self.region_of(from);
        let mut remaining = base;
        let mut t = depart;
        loop {
            let elapsed = t - depart;
            if elapsed >= INF {
                return INF;
            }
            let m = self.multiplier_pm(region, t);
            let bucket_end = (t / self.bucket_len + 1) * self.bucket_len;
            if m == 1000 {
                let cap = bucket_end - t;
                if remaining <= cap {
                    return elapsed + remaining;
                }
                remaining -= cap;
            } else {
                // u128 keeps `(end − t) · 1000` and `remaining · m`
                // exact for every representable cost.
                let cap = ((u128::from(bucket_end - t) * 1000) / u128::from(m)) as u64;
                if remaining <= cap {
                    let finish = (u128::from(remaining) * u128::from(m)).div_ceil(1000) as u64;
                    return (elapsed + finish).min(INF);
                }
                remaining -= cap;
            }
            t = bucket_end;
        }
    }

    fn is_flat(&self) -> bool {
        self.flat
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak() -> CongestionProfile {
        CongestionProfile::chengdu_two_peak()
    }

    #[test]
    fn flat_profile_is_the_identity() {
        let p = CongestionProfile::flat();
        assert!(p.is_flat());
        for (base, t) in [(0u64, 0u64), (1, 7), (123_456, 999_999), (INF, 3)] {
            assert_eq!(p.leg_time(VertexId(0), base, t), base.min(INF));
        }
        // The two-peak preset is the identity off-peak too.
        let q = peak();
        assert!(!q.is_flat());
        assert_eq!(
            q.leg_time(VertexId(0), 5_000, 0),
            5_000,
            "midnight is free flow"
        );
    }

    #[test]
    fn peak_hours_stretch_travel_times() {
        let p = peak();
        // Fully inside the 08:00 bucket (1.7×).
        let depart = 8 * HOUR_CS + 10;
        assert_eq!(p.leg_time(VertexId(0), 10_000, depart), 17_000);
        // Straddling 07:00→08:00: 1.3× then 1.7×.
        let depart = 8 * HOUR_CS - 1_300; // 1300 cs before the 08:00 edge
                                          // First 1300 cs at 1.3× cover 1000 progress; the remaining
                                          // 9000 at 1.7× take 15300.
        assert_eq!(p.leg_time(VertexId(0), 10_000, depart), 1_300 + 15_300);
    }

    #[test]
    fn conservation_and_base_monotonicity() {
        let p = peak();
        for t in (0..24 * HOUR_CS).step_by((HOUR_CS / 3) as usize) {
            let mut prev = 0;
            for base in [0u64, 1, 17, 500, 9_999, 360_001] {
                let lt = p.leg_time(VertexId(0), base, t);
                assert!(lt >= base, "conservation broke at t={t} base={base}");
                assert!(lt >= prev, "monotonicity broke at t={t} base={base}");
                prev = lt;
            }
        }
    }

    #[test]
    fn fifo_no_overtaking_across_the_whole_day() {
        // Dense deterministic sweep across every bucket edge of the
        // two-peak day: departing later never means arriving earlier.
        let p = peak();
        for base in [1u64, 777, 12_345, 150_000] {
            let mut last_arrival = 0u64;
            let mut t = 0u64;
            while t < 25 * HOUR_CS {
                let arrival = t + p.leg_time(VertexId(0), base, t);
                assert!(
                    arrival >= last_arrival,
                    "overtaking: base={base} t={t} arrival={arrival} < {last_arrival}"
                );
                last_arrival = arrival;
                t += 997; // co-prime step so edges get straddled
            }
        }
    }

    #[test]
    fn day_wraps_around() {
        let p = peak();
        let a = p.leg_time(VertexId(0), 4_321, 8 * HOUR_CS);
        let b = p.leg_time(VertexId(0), 4_321, 8 * HOUR_CS + 3 * p.period());
        assert_eq!(a, b);
    }

    #[test]
    fn regions_pick_their_own_tables() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
            Point::new(100.0, 100.0),
        ];
        let regions = CongestionProfile::regionize(&points, 2, 2);
        assert_eq!(regions, vec![0, 1, 2, 3]);
        let p = CongestionProfile::per_region(
            "core-vs-suburb",
            HOUR_CS,
            vec![vec![1000], vec![2000], vec![1000], vec![1000]],
            regions,
        )
        .unwrap();
        assert_eq!(p.leg_time(VertexId(0), 1_000, 0), 1_000);
        assert_eq!(p.leg_time(VertexId(1), 1_000, 0), 2_000);
        // Vertices beyond the map fall back to region 0.
        assert_eq!(p.leg_time(VertexId(9), 1_000, 0), 1_000);
    }

    #[test]
    fn invalid_profiles_are_refused() {
        assert_eq!(
            CongestionProfile::uniform("bad", HOUR_CS, &[0.9]).unwrap_err(),
            ProfileError::BelowOne { found: 900 }
        );
        assert_eq!(
            CongestionProfile::uniform("bad", HOUR_CS, &[9.5]).unwrap_err(),
            ProfileError::TooLarge { found: 9_500 }
        );
        assert_eq!(
            CongestionProfile::uniform("bad", 10, &[1.5]).unwrap_err(),
            ProfileError::BucketTooShort
        );
        assert_eq!(
            CongestionProfile::uniform("bad", HOUR_CS, &[]).unwrap_err(),
            ProfileError::Empty
        );
        assert_eq!(
            CongestionProfile::per_region("bad", HOUR_CS, vec![vec![1000], vec![]], Vec::new())
                .unwrap_err(),
            ProfileError::RaggedRegions
        );
        assert!(CongestionProfile::constant("ok", 1.5).is_ok());
    }

    #[test]
    fn constant_profile_ceils_exactly() {
        let p = CongestionProfile::constant("x1.5", 1.5).unwrap();
        assert_eq!(p.leg_time(VertexId(0), 2, 0), 3);
        assert_eq!(p.leg_time(VertexId(0), 3, 0), 5); // ceil(4.5)
        assert_eq!(p.leg_time(VertexId(0), 1_000, 12 * HOUR_CS), 1_500);
    }

    #[test]
    fn inf_and_zero_pass_through() {
        let p = peak();
        assert_eq!(p.leg_time(VertexId(0), 0, 8 * HOUR_CS), 0);
        assert_eq!(p.leg_time(VertexId(0), INF, 8 * HOUR_CS), INF);
        assert_eq!(p.leg_time(VertexId(0), 5, INF), 5.min(INF));
    }
}
