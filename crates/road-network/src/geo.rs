//! Planar geometry: points, Euclidean distance, bounding boxes.
//!
//! Coordinates are planar **meters** (e.g. a local projection of
//! lat/long). The paper's decision phase (§5.1) lower-bounds road-network
//! travel times with the Euclidean distance between coordinates; we keep
//! coordinates in meters and convert to time at the network's top speed,
//! which preserves `euc(u, v) <= dis(u, v)`.

use serde::{Deserialize, Serialize};

/// A point in a planar, meter-scaled coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from meter coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Straight-line distance to `other`, in meters.
    #[inline]
    pub fn euclidean_m(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Projects WGS84 latitude/longitude (degrees) onto local planar
    /// meters using an equirectangular approximation around `lat0`.
    ///
    /// Good to <0.5% error at city scale, which is all the workloads
    /// need; real OSM extracts can be imported through this.
    pub fn from_lat_lng(lat: f64, lng: f64, lat0: f64) -> Self {
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let x = EARTH_RADIUS_M * lng.to_radians() * lat0.to_radians().cos();
        let y = EARTH_RADIUS_M * lat.to_radians();
        Point { x, y }
    }
}

/// An axis-aligned bounding box over [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoundingBox {
    /// The empty box (inverted bounds); extend with [`BoundingBox::include`].
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Grows the box to contain `p`.
    pub fn include(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Builds the tight box around an iterator of points.
    pub fn around<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.include(p);
        }
        b
    }

    /// Box width in meters (0 for empty boxes).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height in meters (0 for empty boxes).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.euclidean_m(&b), 5.0);
        assert_eq!(b.euclidean_m(&a), 5.0);
        assert_eq!(a.euclidean_m(&a), 0.0);
    }

    #[test]
    fn lat_lng_projection_scale() {
        // One degree of latitude is ~111.2 km regardless of longitude.
        let a = Point::from_lat_lng(40.0, -74.0, 40.0);
        let b = Point::from_lat_lng(41.0, -74.0, 40.0);
        let d = a.euclidean_m(&b);
        assert!((d - 111_195.0).abs() < 500.0, "got {d}");
    }

    #[test]
    fn bbox_grows_and_contains() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, -5.0),
            Point::new(-2.0, 8.0),
        ];
        let b = BoundingBox::around(pts);
        assert_eq!(b.min, Point::new(-2.0, -5.0));
        assert_eq!(b.max, Point::new(10.0, 8.0));
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(!b.contains(Point::new(11.0, 0.0)));
        assert_eq!(b.width(), 12.0);
        assert_eq!(b.height(), 13.0);
    }

    #[test]
    fn empty_bbox_has_zero_extent() {
        let b = BoundingBox::empty();
        assert_eq!(b.width(), 0.0);
        assert_eq!(b.height(), 0.0);
    }
}
