//! Uniform grid indexes over moving items (workers).
//!
//! Two variants, matching the two index designs compared in §6.2:
//!
//! * [`GridIndex`] — plain per-cell buckets of item ids. This is what
//!   `pruneGreedyDP`, `GreedyDP`, `kinetic` and `batch` use: "the grid
//!   index of the other algorithms only stores the IDs of workers in
//!   the grid".
//! * [`SortedCellGrid`] — additionally precomputes, for every cell, all
//!   cells sorted by center distance (T-Share's "spatio-temporally
//!   ordered grid lists"). Candidate search walks that list outward.
//!   This is the memory-hungry design: `O(C²)` for `C` cells, which is
//!   exactly why the paper's Fig. 5 memory panel shows `tshare` using
//!   orders of magnitude more memory at small `g`.

use crate::fxhash::FxHashMap;
use crate::geo::{BoundingBox, Point};

/// Opaque item identifier (worker id in the planners).
pub type ItemId = u64;

/// A plain uniform grid of item buckets.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BoundingBox,
    cell_m: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<ItemId>>,
    /// item -> (cell, exact position); positions let queries filter by
    /// true distance instead of cell membership alone.
    items: FxHashMap<ItemId, (usize, Point)>,
}

impl GridIndex {
    /// Creates a grid covering `bbox` with square cells of `cell_m`
    /// meters (the paper's parameter `g`, in km there).
    ///
    /// # Panics
    /// If `cell_m <= 0`.
    pub fn new(bbox: BoundingBox, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let nx = (bbox.width() / cell_m).ceil().max(1.0) as usize;
        let ny = (bbox.height() / cell_m).ceil().max(1.0) as usize;
        GridIndex {
            bbox,
            cell_m,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            items: FxHashMap::default(),
        }
    }

    /// Grid dimensions `(columns, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The cell index containing `p` (clamped to the grid).
    #[inline]
    pub fn cell_of(&self, p: Point) -> usize {
        let cx = (((p.x - self.bbox.min.x) / self.cell_m) as isize).clamp(0, self.nx as isize - 1)
            as usize;
        let cy = (((p.y - self.bbox.min.y) / self.cell_m) as isize).clamp(0, self.ny as isize - 1)
            as usize;
        cy * self.nx + cx
    }

    /// Center point of cell `c`.
    pub fn cell_center(&self, c: usize) -> Point {
        let cx = c % self.nx;
        let cy = c / self.nx;
        Point::new(
            self.bbox.min.x + (cx as f64 + 0.5) * self.cell_m,
            self.bbox.min.y + (cy as f64 + 0.5) * self.cell_m,
        )
    }

    /// Inserts or moves an item to position `p`.
    pub fn upsert(&mut self, id: ItemId, p: Point) {
        let new_cell = self.cell_of(p);
        match self.items.get_mut(&id) {
            Some((old_cell, old_p)) => {
                let old_cell = *old_cell;
                *old_p = p;
                if old_cell != new_cell {
                    Self::remove_from_cell(&mut self.cells[old_cell], id);
                    self.cells[new_cell].push(id);
                    self.items.get_mut(&id).expect("just seen").0 = new_cell;
                }
            }
            None => {
                self.cells[new_cell].push(id);
                self.items.insert(id, (new_cell, p));
            }
        }
    }

    /// Removes an item; returns whether it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        match self.items.remove(&id) {
            Some((cell, _)) => {
                Self::remove_from_cell(&mut self.cells[cell], id);
                true
            }
            None => false,
        }
    }

    fn remove_from_cell(cell: &mut Vec<ItemId>, id: ItemId) {
        if let Some(pos) = cell.iter().position(|&x| x == id) {
            cell.swap_remove(pos);
        }
    }

    /// Exact position of an item, if indexed.
    pub fn position(&self, id: ItemId) -> Option<Point> {
        self.items.get(&id).map(|(_, p)| *p)
    }

    /// Collects ids of all items within `radius_m` of `p` (exact
    /// point-distance filter after the coarse cell sweep) into `out`.
    pub fn items_within(&self, p: Point, radius_m: f64, out: &mut Vec<ItemId>) {
        out.clear();
        if radius_m < 0.0 {
            return;
        }
        // Clamp both bounds into the grid: items whose positions fall
        // outside the bounding box are clamped into border cells by
        // `cell_of`, so border cells must stay scannable even when the
        // query circle itself lies outside the box. The exact
        // point-distance filter below keeps the result correct.
        let lo_x = (((p.x - radius_m - self.bbox.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1);
        let hi_x = (((p.x + radius_m - self.bbox.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1);
        let lo_y = (((p.y - radius_m - self.bbox.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1);
        let hi_y = (((p.y + radius_m - self.bbox.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1);
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                let c = cy as usize * self.nx + cx as usize;
                for &id in &self.cells[c] {
                    let q = self.items[&id].1;
                    if q.euclidean_m(&p) <= radius_m {
                        out.push(id);
                    }
                }
            }
        }
    }

    /// All indexed item ids (arbitrary order).
    pub fn all_items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.keys().copied()
    }

    /// Approximate heap usage in bytes.
    pub fn mem_bytes(&self) -> usize {
        let buckets: usize = self.cells.iter().map(|c| c.capacity() * 8).sum();
        self.cells.capacity() * std::mem::size_of::<Vec<ItemId>>()
            + buckets
            + self.items.capacity() * (8 + std::mem::size_of::<(usize, Point)>() + 8)
    }
}

/// T-Share-style grid: per-cell list of *all* cells ordered by center
/// distance, plus the same item buckets as [`GridIndex`].
#[derive(Debug, Clone)]
pub struct SortedCellGrid {
    base: GridIndex,
    /// `sorted[c]` = every cell id ordered by distance from `c`'s
    /// center (including `c` itself, first). `O(C²)` memory by design.
    sorted: Vec<Vec<(f32, u32)>>,
}

impl SortedCellGrid {
    /// Builds the sorted cell lists for a grid over `bbox`.
    pub fn new(bbox: BoundingBox, cell_m: f64) -> Self {
        let base = GridIndex::new(bbox, cell_m);
        let c = base.num_cells();
        let centers: Vec<Point> = (0..c).map(|i| base.cell_center(i)).collect();
        let mut sorted = Vec::with_capacity(c);
        for i in 0..c {
            let mut row: Vec<(f32, u32)> = centers
                .iter()
                .enumerate()
                .map(|(j, q)| (centers[i].euclidean_m(q) as f32, j as u32))
                .collect();
            row.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            sorted.push(row);
        }
        SortedCellGrid { base, sorted }
    }

    /// The underlying plain grid (item operations live there).
    pub fn grid(&self) -> &GridIndex {
        &self.base
    }

    /// Mutable access to the underlying grid.
    pub fn grid_mut(&mut self) -> &mut GridIndex {
        &mut self.base
    }

    /// Walks cells outward from the cell containing `p`, collecting
    /// items until cell-center distance exceeds `radius_m`; items are
    /// *not* point-filtered (T-Share prunes by cell reachability only,
    /// which is why it can wrongly discard workers — §6.2 notes its
    /// "searching process mistakenly removes many possible workers").
    pub fn items_in_reach(&self, p: Point, radius_m: f64, out: &mut Vec<ItemId>) {
        out.clear();
        let origin = self.base.cell_of(p);
        for &(d, cell) in &self.sorted[origin] {
            if f64::from(d) > radius_m {
                break;
            }
            out.extend_from_slice(&self.base.cells[cell as usize]);
        }
    }

    /// T-Share's *lazy single-side search*: walk cells outward and stop
    /// at the first ring of cells that yields any item at all (or when
    /// `radius_m` is exceeded). Nearer-but-busy workers shadow farther
    /// feasible ones — the designed-in lossiness behind T-Share's low
    /// served rate in §6.2.
    pub fn items_in_first_hit(&self, p: Point, radius_m: f64, out: &mut Vec<ItemId>) {
        out.clear();
        let origin = self.base.cell_of(p);
        let mut hit_dist: Option<f32> = None;
        for &(d, cell) in &self.sorted[origin] {
            if f64::from(d) > radius_m {
                break;
            }
            if let Some(h) = hit_dist {
                // Finish the equidistant ring, then stop.
                if d > h {
                    break;
                }
            }
            if !self.base.cells[cell as usize].is_empty() {
                out.extend_from_slice(&self.base.cells[cell as usize]);
                hit_dist.get_or_insert(d);
            }
        }
    }

    /// Approximate heap usage in bytes: the base grid plus the `O(C²)`
    /// sorted lists — the number the paper's Fig. 5 memory panel tracks.
    pub fn mem_bytes(&self) -> usize {
        let lists: usize = self.sorted.iter().map(|r| r.capacity() * 8).sum();
        self.base.mem_bytes()
            + lists
            + self.sorted.capacity() * std::mem::size_of::<Vec<(f32, u32)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox(w: f64, h: f64) -> BoundingBox {
        let mut b = BoundingBox::empty();
        b.include(Point::new(0.0, 0.0));
        b.include(Point::new(w, h));
        b
    }

    #[test]
    fn dims_and_cells() {
        let g = GridIndex::new(bbox(10_000.0, 5_000.0), 1_000.0);
        assert_eq!(g.dims(), (10, 5));
        assert_eq!(g.num_cells(), 50);
    }

    #[test]
    fn upsert_move_remove() {
        let mut g = GridIndex::new(bbox(10_000.0, 10_000.0), 1_000.0);
        g.upsert(7, Point::new(100.0, 100.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(7), Some(Point::new(100.0, 100.0)));

        // Move to another cell.
        g.upsert(7, Point::new(9_500.0, 9_500.0));
        assert_eq!(g.len(), 1);
        let mut out = Vec::new();
        g.items_within(Point::new(100.0, 100.0), 500.0, &mut out);
        assert!(out.is_empty());
        g.items_within(Point::new(9_400.0, 9_400.0), 500.0, &mut out);
        assert_eq!(out, vec![7]);

        assert!(g.remove(7));
        assert!(!g.remove(7));
        assert!(g.is_empty());
    }

    #[test]
    fn within_filters_by_true_distance() {
        let mut g = GridIndex::new(bbox(10_000.0, 10_000.0), 1_000.0);
        g.upsert(1, Point::new(500.0, 500.0));
        g.upsert(2, Point::new(1_400.0, 500.0)); // 900 m away
        g.upsert(3, Point::new(3_000.0, 500.0)); // 2500 m away
        let mut out = Vec::new();
        g.items_within(Point::new(500.0, 500.0), 1_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
        g.items_within(Point::new(500.0, 500.0), 100.0, &mut out);
        assert_eq!(out, vec![1]);
        g.items_within(Point::new(500.0, 500.0), -1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn within_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = GridIndex::new(bbox(5_000.0, 5_000.0), 750.0);
        let mut pts = Vec::new();
        for id in 0..200u64 {
            let p = Point::new(rng.gen_range(0.0..5_000.0), rng.gen_range(0.0..5_000.0));
            g.upsert(id, p);
            pts.push(p);
        }
        let mut out = Vec::new();
        for _ in 0..50 {
            let q = Point::new(rng.gen_range(0.0..5_000.0), rng.gen_range(0.0..5_000.0));
            let r = rng.gen_range(0.0..2_000.0);
            g.items_within(q, r, &mut out);
            out.sort_unstable();
            let brute: Vec<ItemId> = (0..200u64)
                .filter(|&id| pts[id as usize].euclidean_m(&q) <= r)
                .collect();
            assert_eq!(out, brute);
        }
    }

    #[test]
    fn points_outside_bbox_clamp() {
        let mut g = GridIndex::new(bbox(1_000.0, 1_000.0), 500.0);
        g.upsert(1, Point::new(-400.0, 2_000.0)); // outside: clamps to a corner cell
        assert_eq!(g.len(), 1);
        let mut out = Vec::new();
        g.items_within(Point::new(-400.0, 2_000.0), 1.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn sorted_cell_grid_walks_outward() {
        let mut s = SortedCellGrid::new(bbox(4_000.0, 4_000.0), 1_000.0);
        s.grid_mut().upsert(1, Point::new(500.0, 500.0));
        s.grid_mut().upsert(2, Point::new(3_500.0, 3_500.0));
        let mut out = Vec::new();
        // Small reach: only the local cell cluster.
        s.items_in_reach(Point::new(500.0, 500.0), 600.0, &mut out);
        assert_eq!(out, vec![1]);
        // Reach across the whole box.
        s.items_in_reach(Point::new(500.0, 500.0), 10_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn sorted_grid_memory_dominates_plain_grid() {
        let plain = GridIndex::new(bbox(20_000.0, 20_000.0), 1_000.0);
        let sorted = SortedCellGrid::new(bbox(20_000.0, 20_000.0), 1_000.0);
        // 400 cells -> 160k sorted entries vs ~0 for the plain grid.
        assert!(sorted.mem_bytes() > plain.mem_bytes() * 10);
    }

    #[test]
    fn smaller_cells_blow_up_sorted_grid_memory() {
        // The Fig. 5 effect: tshare memory grows sharply as g shrinks.
        let coarse = SortedCellGrid::new(bbox(10_000.0, 10_000.0), 2_000.0);
        let fine = SortedCellGrid::new(bbox(10_000.0, 10_000.0), 500.0);
        assert!(fine.mem_bytes() > coarse.mem_bytes() * 50);
    }
}
