//! Compact road-network graphs (Def. 1 of the paper).
//!
//! A [`RoadNetwork`] is an undirected graph `G = (V, E)` with a travel
//! cost per edge, stored in CSR (compressed sparse row) form for cache
//! friendly traversal, plus planar coordinates per vertex so the
//! Euclidean lower bound of §5.1 can be computed.

use serde::{Deserialize, Serialize};

use crate::geo::{BoundingBox, Point};
use crate::{Cost, VertexId};

/// Functional road classes with their assumed driving speeds.
///
/// §6.1: "we assign a constant speed for each type of road i.e., 80% of
/// the maximum legal speed limit"; the paper quotes 23 m/s on motorways
/// and 6 m/s on residential streets. The intermediate classes interpolate
/// typical urban limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Grade-separated highway (~100 km/h limit).
    Motorway,
    /// Major arterial (~70 km/h limit).
    Primary,
    /// Collector street (~50 km/h limit).
    Secondary,
    /// Residential street (~30 km/h limit).
    Residential,
}

impl RoadClass {
    /// Assumed driving speed in meters per second (80% of the limit).
    #[inline]
    pub fn speed_mps(self) -> f64 {
        match self {
            RoadClass::Motorway => 23.0,
            RoadClass::Primary => 15.5,
            RoadClass::Secondary => 11.0,
            RoadClass::Residential => 6.0,
        }
    }

    /// The fastest class; defines the speed used by the Euclidean
    /// travel-time lower bound.
    pub const FASTEST_MPS: f64 = 23.0;

    /// All classes, fastest first.
    pub const ALL: [RoadClass; 4] = [
        RoadClass::Motorway,
        RoadClass::Primary,
        RoadClass::Secondary,
        RoadClass::Residential,
    ];
}

/// Converts a length in meters driven at `speed_mps` into a [`Cost`]
/// (centiseconds), rounding **up** so edge costs never undercut the
/// Euclidean bound.
#[inline]
pub fn travel_cost(length_m: f64, speed_mps: f64) -> Cost {
    debug_assert!(length_m >= 0.0 && speed_mps > 0.0);
    ((length_m / speed_mps) * 100.0).ceil() as Cost
}

/// Converts a straight-line length in meters into the travel-time lower
/// bound at the network's top speed, rounding **down** (a lower bound
/// must never overshoot).
#[inline]
pub fn euclidean_cost(length_m: f64, top_speed_mps: f64) -> Cost {
    debug_assert!(length_m >= 0.0 && top_speed_mps > 0.0);
    ((length_m / top_speed_mps) * 100.0).floor() as Cost
}

/// An undirected road network in CSR form.
///
/// Build one with [`crate::builder::NetworkBuilder`]; the struct itself
/// is immutable after construction, so it can be shared freely across
/// planner threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    pub(crate) coords: Vec<Point>,
    /// CSR offsets, `offsets.len() == num_vertices() + 1`.
    pub(crate) offsets: Vec<u32>,
    /// Heads of half-edges (each undirected edge appears twice).
    pub(crate) targets: Vec<u32>,
    /// Travel cost of each half-edge, aligned with `targets`.
    pub(crate) costs: Vec<Cost>,
    /// Number of undirected edges.
    pub(crate) undirected_edges: usize,
    /// Fastest speed present, used for Euclidean travel-time bounds.
    pub(crate) top_speed_mps: f64,
}

impl RoadNetwork {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.undirected_edges
    }

    /// Coordinates of `v`.
    #[inline]
    pub fn point(&self, v: VertexId) -> Point {
        self.coords[v.idx()]
    }

    /// Iterates over `(neighbor, edge_cost)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Cost)> + '_ {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.costs[lo..hi])
            .map(|(&t, &c)| (VertexId(t), c))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.idx() + 1] - self.offsets[v.idx()]) as usize
    }

    /// The fastest road speed in the network (m/s).
    #[inline]
    pub fn top_speed_mps(&self) -> f64 {
        self.top_speed_mps
    }

    /// Euclidean travel-time lower bound between two vertices.
    #[inline]
    pub fn euc(&self, u: VertexId, v: VertexId) -> Cost {
        let d = self.point(u).euclidean_m(&self.point(v));
        euclidean_cost(d, self.top_speed_mps)
    }

    /// Tight bounding box of all vertex coordinates.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::around(self.coords.iter().copied())
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.coords.len() as u32).map(VertexId)
    }

    /// Whether the network is connected (BFS from vertex 0).
    pub fn is_connected(&self) -> bool {
        if self.coords.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.num_vertices()];
        let mut queue = std::collections::VecDeque::from([VertexId(0)]);
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = queue.pop_front() {
            for (n, _) in self.neighbors(v) {
                if !seen[n.idx()] {
                    seen[n.idx()] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        count == self.num_vertices()
    }

    /// The vertex whose coordinates are closest to `p` (linear scan;
    /// workloads map request origins/destinations onto vertices once at
    /// generation time, exactly as the paper pre-maps pickup points).
    pub fn nearest_vertex(&self, p: Point) -> Option<VertexId> {
        self.coords
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.euclidean_m(&p)
                    .partial_cmp(&b.euclidean_m(&p))
                    .expect("coordinates are finite")
            })
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Rough heap footprint in bytes (coords + CSR arrays).
    pub fn mem_bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<Point>()
            + self.offsets.len() * 4
            + self.targets.len() * 4
            + self.costs.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn triangle() -> RoadNetwork {
        // 10 m-scale coordinates: the hand-set costs (>= 100 cs) stay
        // slower than a straight line at top speed (10 m / 23 m/s ≈ 43 cs),
        // so the Euclidean bound property holds.
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(10.0, 0.0));
        let v2 = b.add_vertex(Point::new(0.0, 10.0));
        b.add_edge_with_cost(v0, v1, 100).unwrap();
        b.add_edge_with_cost(v1, v2, 150).unwrap();
        b.add_edge_with_cost(v2, v0, 120).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn csr_roundtrip() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        let n0: Vec<_> = g.neighbors(VertexId(0)).collect();
        assert!(n0.contains(&(VertexId(1), 100)));
        assert!(n0.contains(&(VertexId(2), 120)));
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());

        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        b.add_vertex(Point::new(2.0, 0.0)); // isolated
        b.add_edge_with_cost(v0, v1, 5).unwrap();
        let g = b.finish().unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn euclidean_bound_is_a_lower_bound_on_edges() {
        let g = triangle();
        for v in g.vertices() {
            for (n, c) in g.neighbors(v) {
                // Straight line at top speed can't be slower than the edge.
                assert!(g.euc(v, n) <= c, "euc({v},{n}) > cost");
            }
        }
    }

    #[test]
    fn nearest_vertex_picks_closest() {
        let g = triangle();
        assert_eq!(g.nearest_vertex(Point::new(1.0, 1.0)), Some(VertexId(0)));
        assert_eq!(g.nearest_vertex(Point::new(9.9, 0.5)), Some(VertexId(1)));
    }

    #[test]
    fn travel_cost_rounds_up_euclidean_rounds_down() {
        // 100 m at 23 m/s = 434.78 cs.
        assert_eq!(travel_cost(100.0, 23.0), 435);
        assert_eq!(euclidean_cost(100.0, 23.0), 434);
        assert!(euclidean_cost(100.0, 23.0) <= travel_cost(100.0, 23.0));
    }

    #[test]
    fn road_class_speeds_ordered() {
        let mut prev = f64::INFINITY;
        for c in RoadClass::ALL {
            assert!(c.speed_mps() <= prev);
            prev = c.speed_mps();
        }
        assert_eq!(RoadClass::FASTEST_MPS, RoadClass::Motorway.speed_mps());
    }
}
