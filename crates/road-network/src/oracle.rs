//! The distance-oracle abstraction and its decorators.
//!
//! Every URPSM algorithm is written against [`DistanceOracle`], which
//! answers the three primitives the paper uses:
//!
//! * `dis(u, v)` — shortest travel time (the paper's `dis(·,·)`),
//! * `euc(u, v)` — the Euclidean travel-time *lower bound* of §5.1
//!   (coordinate arithmetic only, **not** counted as a distance query),
//! * `shortest_path(u, v)` — concrete vertex path, used only when a
//!   route is committed or simulated (§5.3 notes 2–4 path queries per
//!   accepted request).
//!
//! [`CountingOracle`] wraps any oracle with atomic query counters; this
//! is how we reproduce the paper's "tens of billions of saved shortest
//! distance queries" statistics (§6.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::bidirectional::BidirDijkstra;
use crate::dijkstra::DijkstraEngine;
use crate::geo::Point;
use crate::graph::{euclidean_cost, RoadNetwork};
use crate::hub_labels::HubLabels;
use crate::{Cost, VertexId};

/// Shortest-distance / shortest-path oracle over a road network.
///
/// Implementations must be thread-safe (`Send + Sync`) so experiment
/// sweeps can share one oracle across worker threads.
pub trait DistanceOracle: Send + Sync {
    /// Number of vertices of the underlying network.
    fn num_vertices(&self) -> usize;

    /// Planar coordinates of `v` (for Euclidean bounds and grids).
    fn point(&self, v: VertexId) -> Point;

    /// Fastest road speed (m/s), the speed assumed by [`Self::euc`].
    fn top_speed_mps(&self) -> f64;

    /// Exact shortest travel time between `u` and `v` ([`crate::INF`]
    /// when disconnected).
    fn dis(&self, u: VertexId, v: VertexId) -> Cost;

    /// The concrete shortest path, inclusive of both endpoints.
    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>>;

    /// Euclidean travel-time lower bound: straight-line meters at the
    /// network's top speed, rounded down. Guaranteed `<= dis(u, v)`.
    #[inline]
    fn euc(&self, u: VertexId, v: VertexId) -> Cost {
        let d = self.point(u).euclidean_m(&self.point(v));
        euclidean_cost(d, self.top_speed_mps())
    }

    /// The road network this oracle answers over, when it is
    /// graph-backed. Matrix-style oracles return `None` (the default).
    /// The mobility service uses this to stand up the time-dependent
    /// oracle ([`crate::td`]) on the *same* graph; decorators forward.
    fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
        None
    }

    /// The static hub-label index behind this oracle, if any — reused
    /// as the free-flow A\* potentials of goal-directed TD search
    /// ([`crate::td::TdDijkstra::goal_directed`]). Decorators forward.
    fn backing_labels(&self) -> Option<&Arc<HubLabels>> {
        None
    }
}

/// Oracle backed by plain Dijkstra searches. Exact but slow — intended
/// for tests, tiny graphs and as the reference in oracle benchmarks.
pub struct DijkstraOracle {
    g: Arc<RoadNetwork>,
    engine: Mutex<DijkstraEngine>,
}

impl DijkstraOracle {
    /// Creates an oracle over `g`.
    pub fn new(g: Arc<RoadNetwork>) -> Self {
        let engine = Mutex::new(DijkstraEngine::for_network(&g));
        DijkstraOracle { g, engine }
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.g
    }
}

impl DistanceOracle for DijkstraOracle {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn point(&self, v: VertexId) -> Point {
        self.g.point(v)
    }

    fn top_speed_mps(&self) -> f64 {
        self.g.top_speed_mps()
    }

    fn dis(&self, u: VertexId, v: VertexId) -> Cost {
        self.engine.lock().distance(&self.g, u, v)
    }

    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        self.engine.lock().shortest_path(&self.g, u, v)
    }

    fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
        Some(&self.g)
    }
}

/// Oracle backed by hub labels for distances (§6.1 of the paper) and
/// bidirectional Dijkstra for the rare path reconstructions.
pub struct HubLabelOracle {
    g: Arc<RoadNetwork>,
    labels: Arc<HubLabels>,
    engine: Mutex<BidirDijkstra>,
}

impl HubLabelOracle {
    /// Builds the labels for `g` (one-off preprocessing; excluded from
    /// response-time measurements, as in the paper).
    pub fn build(g: Arc<RoadNetwork>) -> Self {
        let labels = Arc::new(HubLabels::build(&g));
        let engine = Mutex::new(BidirDijkstra::for_network(&g));
        HubLabelOracle { g, labels, engine }
    }

    /// Wraps prebuilt labels.
    pub fn from_labels(g: Arc<RoadNetwork>, labels: HubLabels) -> Self {
        let engine = Mutex::new(BidirDijkstra::for_network(&g));
        HubLabelOracle {
            g,
            labels: Arc::new(labels),
            engine,
        }
    }

    /// The hub-label index (for size statistics).
    pub fn labels(&self) -> &HubLabels {
        &self.labels
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.g
    }
}

impl DistanceOracle for HubLabelOracle {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn point(&self, v: VertexId) -> Point {
        self.g.point(v)
    }

    fn top_speed_mps(&self) -> f64 {
        self.g.top_speed_mps()
    }

    fn dis(&self, u: VertexId, v: VertexId) -> Cost {
        self.labels.distance(u, v)
    }

    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        self.engine.lock().shortest_path(&self.g, u, v)
    }

    fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
        Some(&self.g)
    }

    fn backing_labels(&self) -> Option<&Arc<HubLabels>> {
        Some(&self.labels)
    }
}

/// Query counters observed through a [`CountingOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Shortest-distance queries (`dis`).
    pub dis: u64,
    /// Shortest-path queries.
    pub path: u64,
    /// Euclidean bound evaluations (coordinate math; tracked for
    /// completeness, the paper does not count these as queries).
    pub euc: u64,
}

impl QueryStats {
    /// Difference `self − earlier`, useful for per-phase accounting.
    pub fn since(&self, earlier: &QueryStats) -> QueryStats {
        QueryStats {
            dis: self.dis - earlier.dis,
            path: self.path - earlier.path,
            euc: self.euc - earlier.euc,
        }
    }
}

/// Decorator that counts queries flowing into an inner oracle.
pub struct CountingOracle<O> {
    inner: O,
    dis: AtomicU64,
    path: AtomicU64,
    euc: AtomicU64,
}

impl<O: DistanceOracle> CountingOracle<O> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            dis: AtomicU64::new(0),
            path: AtomicU64::new(0),
            euc: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            dis: self.dis.load(Ordering::Relaxed),
            path: self.path.load(Ordering::Relaxed),
            euc: self.euc.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.dis.store(0, Ordering::Relaxed);
        self.path.store(0, Ordering::Relaxed);
        self.euc.store(0, Ordering::Relaxed);
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: DistanceOracle> DistanceOracle for CountingOracle<O> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn point(&self, v: VertexId) -> Point {
        self.inner.point(v)
    }

    fn top_speed_mps(&self) -> f64 {
        self.inner.top_speed_mps()
    }

    fn dis(&self, u: VertexId, v: VertexId) -> Cost {
        self.dis.fetch_add(1, Ordering::Relaxed);
        self.inner.dis(u, v)
    }

    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        self.path.fetch_add(1, Ordering::Relaxed);
        self.inner.shortest_path(u, v)
    }

    fn euc(&self, u: VertexId, v: VertexId) -> Cost {
        self.euc.fetch_add(1, Ordering::Relaxed);
        self.inner.euc(u, v)
    }

    // Structural accessors are not queries: no counter bump.
    fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
        self.inner.backing_network()
    }

    fn backing_labels(&self) -> Option<&Arc<HubLabels>> {
        self.inner.backing_labels()
    }
}

// Blanket forwarding so `&O`, `Box<dyn ...>` and `Arc<dyn ...>` are
// oracles too; planners can then hold whatever ownership suits them.
macro_rules! forward_oracle {
    ($ty:ty) => {
        impl<O: DistanceOracle + ?Sized> DistanceOracle for $ty {
            fn num_vertices(&self) -> usize {
                (**self).num_vertices()
            }
            fn point(&self, v: VertexId) -> Point {
                (**self).point(v)
            }
            fn top_speed_mps(&self) -> f64 {
                (**self).top_speed_mps()
            }
            fn dis(&self, u: VertexId, v: VertexId) -> Cost {
                (**self).dis(u, v)
            }
            fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
                (**self).shortest_path(u, v)
            }
            fn euc(&self, u: VertexId, v: VertexId) -> Cost {
                (**self).euc(u, v)
            }
            fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
                (**self).backing_network()
            }
            fn backing_labels(&self) -> Option<&Arc<HubLabels>> {
                (**self).backing_labels()
            }
        }
    };
}

forward_oracle!(&O);
forward_oracle!(Box<O>);
forward_oracle!(Arc<O>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geo::Point;

    fn square() -> Arc<RoadNetwork> {
        // 0 - 1
        // |   |
        // 3 - 2   square with 23 m sides, all cost 100 (= straight-line
        //         travel time at top speed, so the Euclidean bound is tight).
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 23.0));
        let v1 = b.add_vertex(Point::new(23.0, 23.0));
        let v2 = b.add_vertex(Point::new(23.0, 0.0));
        let v3 = b.add_vertex(Point::new(0.0, 0.0));
        for (u, v) in [(v0, v1), (v1, v2), (v2, v3), (v3, v0)] {
            b.add_edge_with_cost(u, v, 100).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn dijkstra_and_hub_label_oracles_agree() {
        let g = square();
        let d = DijkstraOracle::new(g.clone());
        let h = HubLabelOracle::build(g.clone());
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(d.dis(u, v), h.dis(u, v), "({u},{v})");
            }
        }
        // Opposite corners: two hops.
        assert_eq!(d.dis(VertexId(0), VertexId(2)), 200);
    }

    #[test]
    fn euclid_is_lower_bound() {
        let g = square();
        let h = HubLabelOracle::build(g);
        for u in 0..4u32 {
            for v in 0..4u32 {
                let (u, v) = (VertexId(u), VertexId(v));
                assert!(h.euc(u, v) <= h.dis(u, v), "euc > dis for ({u},{v})");
            }
        }
    }

    #[test]
    fn counting_decorator_counts() {
        let g = square();
        let c = CountingOracle::new(DijkstraOracle::new(g));
        assert_eq!(c.stats(), QueryStats::default());
        c.dis(VertexId(0), VertexId(2));
        c.dis(VertexId(1), VertexId(3));
        c.euc(VertexId(0), VertexId(1));
        c.shortest_path(VertexId(0), VertexId(2));
        let s = c.stats();
        assert_eq!(s.dis, 2);
        assert_eq!(s.euc, 1);
        assert_eq!(s.path, 1);
        let later = QueryStats {
            dis: 5,
            path: 1,
            euc: 2,
        };
        assert_eq!(later.since(&s).dis, 3);
        c.reset();
        assert_eq!(c.stats(), QueryStats::default());
    }

    #[test]
    fn counting_stays_exact_under_concurrency() {
        // The parallel planning engine hammers one shared oracle from
        // many threads; the §6.2 query statistics must stay *exact*,
        // not approximately right.
        let g = square();
        let c = CountingOracle::new(DijkstraOracle::new(g));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 250;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let u = VertexId(((t + i) % 4) as u32);
                        let v = VertexId((i % 4) as u32);
                        c.dis(u, v);
                        c.euc(u, v);
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.dis, (THREADS * PER_THREAD) as u64);
        assert_eq!(s.euc, (THREADS * PER_THREAD) as u64);
        assert_eq!(s.path, 0);
    }

    #[test]
    fn trait_object_forwarding() {
        let g = square();
        let boxed: Box<dyn DistanceOracle> = Box::new(DijkstraOracle::new(g.clone()));
        assert_eq!(boxed.dis(VertexId(0), VertexId(2)), 200);
        let arced: Arc<dyn DistanceOracle> = Arc::new(DijkstraOracle::new(g));
        assert_eq!(arced.dis(VertexId(0), VertexId(2)), 200);
        let by_ref: &dyn DistanceOracle = &*arced;
        assert_eq!(by_ref.num_vertices(), 4);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = square();
        let h = HubLabelOracle::build(g);
        let p = h.shortest_path(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(*p.first().unwrap(), VertexId(0));
        assert_eq!(*p.last().unwrap(), VertexId(2));
        assert_eq!(p.len(), 3);
    }
}
