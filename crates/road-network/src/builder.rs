//! Incremental construction of [`RoadNetwork`]s.

use crate::error::{NetworkError, Result};
use crate::geo::Point;
use crate::graph::{travel_cost, RoadClass, RoadNetwork};
use crate::{Cost, VertexId};

/// Builds a [`RoadNetwork`] edge by edge, validating as it goes.
///
/// Parallel edges are allowed during construction; `finish` keeps the
/// cheapest. Self-loops and dangling endpoints are rejected eagerly so
/// errors point at the offending call site.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    coords: Vec<Point>,
    edges: Vec<(u32, u32, Cost)>,
    top_speed_mps: f64,
}

impl NetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        NetworkBuilder {
            coords: Vec::new(),
            edges: Vec::new(),
            top_speed_mps: RoadClass::FASTEST_MPS,
        }
    }

    /// Pre-sizes internal buffers.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        NetworkBuilder {
            coords: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            top_speed_mps: RoadClass::FASTEST_MPS,
        }
    }

    /// Overrides the top speed used for Euclidean lower bounds.
    ///
    /// Must be at least as fast as any edge actually added, otherwise
    /// the Euclidean bound of §5.1 would stop being a lower bound; the
    /// default is [`RoadClass::FASTEST_MPS`].
    pub fn set_top_speed_mps(&mut self, mps: f64) {
        assert!(mps > 0.0, "top speed must be positive");
        self.top_speed_mps = mps;
    }

    /// Adds a vertex at `p`, returning its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        let id = VertexId(self.coords.len() as u32);
        self.coords.push(p);
        id
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Adds an undirected edge with an explicit travel cost.
    pub fn add_edge_with_cost(&mut self, u: VertexId, v: VertexId, cost: Cost) -> Result<()> {
        if u == v {
            return Err(NetworkError::SelfLoop(u));
        }
        for &w in &[u, v] {
            if w.idx() >= self.coords.len() {
                return Err(NetworkError::UnknownVertex(w));
            }
        }
        if cost == 0 || cost >= crate::INF {
            return Err(NetworkError::InvalidEdgeCost { from: u, to: v });
        }
        self.edges.push((u.0, v.0, cost));
        Ok(())
    }

    /// Adds an undirected road segment of physical length `length_m`
    /// driven at the speed of `class`; the cost is the travel time.
    pub fn add_road(
        &mut self,
        u: VertexId,
        v: VertexId,
        length_m: f64,
        class: RoadClass,
    ) -> Result<()> {
        let cost = travel_cost(length_m, class.speed_mps()).max(1);
        self.add_edge_with_cost(u, v, cost)
    }

    /// Adds a road whose length is the straight-line distance between
    /// the endpoints' coordinates (typical for generated city grids).
    pub fn add_straight_road(&mut self, u: VertexId, v: VertexId, class: RoadClass) -> Result<()> {
        for &w in &[u, v] {
            if w.idx() >= self.coords.len() {
                return Err(NetworkError::UnknownVertex(w));
            }
        }
        let len = self.coords[u.idx()].euclidean_m(&self.coords[v.idx()]);
        self.add_road(u, v, len, class)
    }

    /// Finalizes into CSR form.
    pub fn finish(self) -> Result<RoadNetwork> {
        if self.coords.is_empty() {
            return Err(NetworkError::Empty);
        }
        if self.coords.len() > u32::MAX as usize {
            return Err(NetworkError::TooManyVertices(self.coords.len()));
        }
        let n = self.coords.len();

        // Deduplicate parallel edges, keeping the cheapest.
        let mut dedup: crate::fxhash::FxHashMap<(u32, u32), Cost> =
            crate::fxhash::FxHashMap::default();
        dedup.reserve(self.edges.len());
        for (u, v, c) in self.edges {
            let key = if u < v { (u, v) } else { (v, u) };
            dedup
                .entry(key)
                .and_modify(|e| *e = (*e).min(c))
                .or_insert(c);
        }
        let undirected_edges = dedup.len();

        // Counting sort into CSR.
        let mut degree = vec![0u32; n];
        for &(u, v) in dedup.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let half_edges = offsets[n] as usize;
        let mut targets = vec![0u32; half_edges];
        let mut costs = vec![0 as Cost; half_edges];
        let mut cursor = offsets[..n].to_vec();
        for (&(u, v), &c) in &dedup {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            costs[cu] = c;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            costs[cv] = c;
            cursor[v as usize] += 1;
        }

        // Sort each adjacency list by target id for deterministic
        // iteration (HashMap order must not leak into results).
        for i in 0..n {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let mut pairs: Vec<(u32, Cost)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(costs[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (k, (t, c)) in pairs.into_iter().enumerate() {
                targets[lo + k] = t;
                costs[lo + k] = c;
            }
        }

        Ok(RoadNetwork {
            coords: self.coords,
            offsets,
            targets,
            costs,
            undirected_edges,
            top_speed_mps: self.top_speed_mps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop_and_unknown_vertex() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        assert_eq!(
            b.add_edge_with_cost(v0, v0, 1),
            Err(NetworkError::SelfLoop(v0))
        );
        assert_eq!(
            b.add_edge_with_cost(v0, VertexId(7), 1),
            Err(NetworkError::UnknownVertex(VertexId(7)))
        );
    }

    #[test]
    fn rejects_zero_cost_edge() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        assert!(b.add_edge_with_cost(v0, v1, 0).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            NetworkBuilder::new().finish().unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn parallel_edges_keep_cheapest() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge_with_cost(v0, v1, 10).unwrap();
        b.add_edge_with_cost(v1, v0, 4).unwrap();
        b.add_edge_with_cost(v0, v1, 7).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(v0).next(), Some((v1, 4)));
    }

    #[test]
    fn straight_road_costs_match_speed() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(230.0, 0.0)); // 230 m
        b.add_straight_road(v0, v1, RoadClass::Motorway).unwrap();
        let g = b.finish().unwrap();
        // 230 m at 23 m/s = 10 s = 1000 cs.
        assert_eq!(g.neighbors(v0).next(), Some((v1, 1000)));
    }

    #[test]
    fn adjacency_sorted_by_target() {
        let mut b = NetworkBuilder::new();
        let c = b.add_vertex(Point::new(0.0, 0.0));
        let mut spokes = Vec::new();
        for i in 0..10 {
            spokes.push(b.add_vertex(Point::new(f64::from(i + 1), 0.0)));
        }
        // Insert hub edges in reverse order.
        for s in spokes.iter().rev() {
            b.add_edge_with_cost(c, *s, 5).unwrap();
        }
        let g = b.finish().unwrap();
        let order: Vec<u32> = g.neighbors(c).map(|(v, _)| v.0).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }
}
