//! Bidirectional Dijkstra for point-to-point queries.
//!
//! Path queries in the simulator (route-leg expansion, §5.3's 2–4 path
//! queries per accepted request) are point-to-point; a bidirectional
//! search settles roughly half the vertices of a unidirectional one on
//! road networks. Exactness follows the classic argument: once the sum
//! of the two search frontiers' minima exceeds the best meeting-point
//! distance `μ`, no better path can exist.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::{Cost, VertexId, INF};

const NO_PARENT: u32 = u32::MAX;

/// One direction's search state (workhorse buffers, epoch-reset).
#[derive(Debug)]
struct Side {
    dist: Vec<Cost>,
    parent: Vec<u32>,
    epoch: Vec<u32>,
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            dist: vec![INF; n],
            parent: vec![NO_PARENT; n],
            epoch: vec![0; n],
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn touch(&mut self, i: usize, epoch: u32) {
        if self.epoch[i] != epoch {
            self.epoch[i] = epoch;
            self.dist[i] = INF;
            self.parent[i] = NO_PARENT;
        }
    }

    #[inline]
    fn seen(&self, i: usize, epoch: u32) -> Cost {
        if self.epoch[i] == epoch {
            self.dist[i]
        } else {
            INF
        }
    }
}

/// Reusable bidirectional point-to-point engine.
#[derive(Debug)]
pub struct BidirDijkstra {
    fwd: Side,
    bwd: Side,
    current_epoch: u32,
}

impl BidirDijkstra {
    /// Engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BidirDijkstra {
            fwd: Side::new(n),
            bwd: Side::new(n),
            current_epoch: 0,
        }
    }

    /// Engine sized for `g`.
    pub fn for_network(g: &RoadNetwork) -> Self {
        Self::new(g.num_vertices())
    }

    /// Shortest distance `s → t`; [`INF`] when disconnected.
    pub fn distance(&mut self, g: &RoadNetwork, s: VertexId, t: VertexId) -> Cost {
        self.search(g, s, t).0
    }

    /// Shortest path `s → t` inclusive of endpoints.
    pub fn shortest_path(
        &mut self,
        g: &RoadNetwork,
        s: VertexId,
        t: VertexId,
    ) -> Option<Vec<VertexId>> {
        let (d, meet) = self.search(g, s, t);
        if d >= INF {
            return None;
        }
        let meet = meet.expect("finite distance has a meeting vertex");
        // Forward half: meet ← … ← s, reversed.
        let mut path = Vec::new();
        let mut cur = meet.0;
        loop {
            path.push(VertexId(cur));
            let p = self.fwd.parent[cur as usize];
            if p == NO_PARENT {
                break;
            }
            cur = p;
        }
        path.reverse();
        // Backward half: meet → … → t.
        let mut cur = meet.0;
        while self.bwd.parent[cur as usize] != NO_PARENT {
            cur = self.bwd.parent[cur as usize];
            path.push(VertexId(cur));
        }
        debug_assert_eq!(*path.first().expect("non-empty"), s);
        debug_assert_eq!(*path.last().expect("non-empty"), t);
        Some(path)
    }

    fn search(&mut self, g: &RoadNetwork, s: VertexId, t: VertexId) -> (Cost, Option<VertexId>) {
        if s == t {
            // Establish parents for the trivial path.
            self.begin(s, t);
            return (0, Some(s));
        }
        self.begin(s, t);
        let epoch = self.current_epoch;
        let mut best: Cost = INF;
        let mut meet: Option<VertexId> = None;

        loop {
            let f_top = self.fwd.heap.peek().map(|Reverse((d, _))| *d);
            let b_top = self.bwd.heap.peek().map(|Reverse((d, _))| *d);
            let (Some(fd), Some(bd)) = (f_top, b_top) else {
                break; // one side exhausted: remaining pairs can't improve
            };
            if crate::cost_add(fd, bd) >= best {
                break; // termination criterion
            }
            // Expand the smaller frontier.
            let forward = fd <= bd;
            let (this, other) = if forward {
                (&mut self.fwd, &mut self.bwd)
            } else {
                (&mut self.bwd, &mut self.fwd)
            };
            let Some(Reverse((d, v))) = this.heap.pop() else {
                break;
            };
            if d > this.seen(v as usize, epoch) {
                continue;
            }
            let lo = g.offsets[v as usize] as usize;
            let hi = g.offsets[v as usize + 1] as usize;
            for k in lo..hi {
                let n = g.targets[k] as usize;
                let nd = d + g.costs[k];
                this.touch(n, epoch);
                if nd < this.dist[n] {
                    this.dist[n] = nd;
                    this.parent[n] = v;
                    this.heap.push(Reverse((nd, n as u32)));
                }
                // Meeting check against the opposite search.
                let od = other.seen(n, epoch);
                if od < INF {
                    let total = crate::cost_add(this.dist[n], od);
                    if total < best {
                        best = total;
                        meet = Some(VertexId(n as u32));
                    }
                }
            }
        }
        (best, meet)
    }

    fn begin(&mut self, s: VertexId, t: VertexId) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            self.fwd.epoch.fill(0);
            self.bwd.epoch.fill(0);
            self.current_epoch = 1;
        }
        let epoch = self.current_epoch;
        self.fwd.heap.clear();
        self.bwd.heap.clear();
        self.fwd.touch(s.idx(), epoch);
        self.fwd.dist[s.idx()] = 0;
        self.fwd.heap.push(Reverse((0, s.0)));
        self.bwd.touch(t.idx(), epoch);
        self.bwd.dist[t.idx()] = 0;
        self.bwd.heap.push(Reverse((0, t.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::dijkstra::DijkstraEngine;
    use crate::geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: u32, extra: u32, seed: u64) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_vertex(Point::new(f64::from(i), 0.0));
        }
        for i in 1..n {
            let p = rng.gen_range(0..i);
            b.add_edge_with_cost(VertexId(i), VertexId(p), rng.gen_range(1..50))
                .unwrap();
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge_with_cost(VertexId(u), VertexId(v), rng.gen_range(1..50))
                    .unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn matches_unidirectional_on_random_graphs() {
        for seed in 0..6 {
            let g = random_graph(80, 120, seed);
            let mut bidi = BidirDijkstra::for_network(&g);
            let mut uni = DijkstraEngine::for_network(&g);
            for u in (0..80u32).step_by(7) {
                for v in (0..80u32).step_by(5) {
                    assert_eq!(
                        bidi.distance(&g, VertexId(u), VertexId(v)),
                        uni.distance(&g, VertexId(u), VertexId(v)),
                        "seed {seed} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn paths_are_valid_and_tight() {
        let g = random_graph(60, 100, 42);
        let mut bidi = BidirDijkstra::for_network(&g);
        let mut uni = DijkstraEngine::for_network(&g);
        for (s, t) in [(0u32, 59u32), (10, 45), (3, 3), (59, 0)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let p = bidi.shortest_path(&g, s, t).unwrap();
            assert_eq!(*p.first().unwrap(), s);
            assert_eq!(*p.last().unwrap(), t);
            // Each hop is a real edge; the total equals the distance.
            let mut total = 0;
            for w in p.windows(2) {
                let cost = g
                    .neighbors(w[0])
                    .find(|(v, _)| *v == w[1])
                    .map(|(_, c)| c)
                    .expect("path hop must be an edge");
                total += cost;
            }
            assert_eq!(total, uni.distance(&g, s, t));
        }
    }

    #[test]
    fn disconnected_returns_inf_and_none() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let d = b.add_vertex(Point::new(2.0, 0.0));
        let e = b.add_vertex(Point::new(3.0, 0.0));
        b.add_edge_with_cost(a, c, 5).unwrap();
        b.add_edge_with_cost(d, e, 5).unwrap();
        let g = b.finish().unwrap();
        let mut bidi = BidirDijkstra::for_network(&g);
        assert_eq!(bidi.distance(&g, a, d), INF);
        assert_eq!(bidi.shortest_path(&g, a, d), None);
        assert_eq!(bidi.distance(&g, a, c), 5);
    }

    #[test]
    fn engine_reuse_is_clean() {
        let g = random_graph(50, 70, 9);
        let mut bidi = BidirDijkstra::for_network(&g);
        let mut uni = DijkstraEngine::for_network(&g);
        for i in 0..200u32 {
            let s = VertexId(i % 50);
            let t = VertexId((i * 7 + 3) % 50);
            assert_eq!(bidi.distance(&g, s, t), uni.distance(&g, s, t));
        }
    }
}
