//! A tiny Fx-style multiplicative hasher for integer keys.
//!
//! The standard library's SipHash is needlessly slow for the `(u32, u32)`
//! vertex-pair keys that dominate this workspace (LRU cache, grid cells).
//! Dedicated hashing crates are outside the allowed dependency set, so we
//! implement the well-known `FxHash` mixing step (as used by rustc)
//! locally: multiply-rotate with a 64-bit odd constant. HashDoS is not a
//! concern — keys are internal vertex ids, never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-Fx 64-bit mixing constant (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: fold 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i + 1)), Some(&(u64::from(i) * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        // A decent mixer should have no collisions on 10k sequential ints.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_fallback_consistent() {
        use std::hash::Hasher as _;
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a byte stream");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a byte stream");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is a byte strean");
        assert_ne!(a.finish(), c.finish());
    }
}
