//! A reusable Dijkstra engine for distances, paths and bounded searches.
//!
//! The engine owns its working arrays and resets them in `O(1)` between
//! searches with an epoch counter, so repeated queries (the common case
//! in planners and in hub-label construction) never reallocate — a
//! "workhorse buffer" in the sense of the Rust performance guide.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::{Cost, VertexId, INF};

/// Reusable single-source shortest path engine over a [`RoadNetwork`].
#[derive(Debug)]
pub struct DijkstraEngine {
    dist: Vec<Cost>,
    parent: Vec<u32>,
    epoch: Vec<u32>,
    current_epoch: u32,
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
    /// Source of the search currently stored in the arrays.
    source: Option<VertexId>,
}

const NO_PARENT: u32 = u32::MAX;

impl DijkstraEngine {
    /// Creates an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraEngine {
            dist: vec![INF; n],
            parent: vec![NO_PARENT; n],
            epoch: vec![0; n],
            current_epoch: 0,
            heap: BinaryHeap::new(),
            source: None,
        }
    }

    /// Creates an engine sized for `g`.
    pub fn for_network(g: &RoadNetwork) -> Self {
        Self::new(g.num_vertices())
    }

    #[inline]
    fn begin(&mut self, s: VertexId) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Extremely rare wrap: hard reset.
            self.epoch.fill(0);
            self.current_epoch = 1;
        }
        self.heap.clear();
        self.touch(s.idx());
        self.dist[s.idx()] = 0;
        self.heap.push(Reverse((0, s.0)));
        self.source = Some(s);
    }

    #[inline]
    fn touch(&mut self, i: usize) {
        if self.epoch[i] != self.current_epoch {
            self.epoch[i] = self.current_epoch;
            self.dist[i] = INF;
            self.parent[i] = NO_PARENT;
        }
    }

    #[inline]
    fn seen_dist(&self, i: usize) -> Cost {
        if self.epoch[i] == self.current_epoch {
            self.dist[i]
        } else {
            INF
        }
    }

    /// Point-to-point distance with early termination at `t`.
    /// Returns [`INF`] if `t` is unreachable.
    pub fn distance(&mut self, g: &RoadNetwork, s: VertexId, t: VertexId) -> Cost {
        if s == t {
            return 0;
        }
        self.begin(s);
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.seen_dist(v as usize) {
                continue; // stale entry
            }
            if v == t.0 {
                return d;
            }
            self.relax_neighbors(g, v, d);
        }
        INF
    }

    /// Full single-source search; afterwards [`Self::dist_to`] and
    /// [`Self::path_to`] answer for any target.
    pub fn sssp(&mut self, g: &RoadNetwork, s: VertexId) {
        self.begin(s);
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.seen_dist(v as usize) {
                continue;
            }
            self.relax_neighbors(g, v, d);
        }
    }

    /// Single-source search that stops expanding past `radius`; vertices
    /// farther than `radius` keep distance [`INF`]. Used by grid-style
    /// candidate filters.
    pub fn bounded_sssp(&mut self, g: &RoadNetwork, s: VertexId, radius: Cost) {
        self.begin(s);
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.seen_dist(v as usize) {
                continue;
            }
            if d > radius {
                // The heap is ordered: every remaining tentative label
                // also exceeds the radius. Clamp them all to INF so
                // callers see a clean "within radius or INF" contract.
                let i = v as usize;
                if self.dist[i] > radius {
                    self.dist[i] = INF;
                }
                while let Some(Reverse((_, w))) = self.heap.pop() {
                    let i = w as usize;
                    if self.epoch[i] == self.current_epoch && self.dist[i] > radius {
                        self.dist[i] = INF;
                    }
                }
                break;
            }
            self.relax_neighbors(g, v, d);
        }
    }

    #[inline]
    fn relax_neighbors(&mut self, g: &RoadNetwork, v: u32, d: Cost) {
        let lo = g.offsets[v as usize] as usize;
        let hi = g.offsets[v as usize + 1] as usize;
        for k in lo..hi {
            let n = g.targets[k] as usize;
            let nd = d + g.costs[k];
            self.touch(n);
            if nd < self.dist[n] {
                self.dist[n] = nd;
                self.parent[n] = v;
                self.heap.push(Reverse((nd, n as u32)));
            }
        }
    }

    /// Distance to `t` after [`Self::sssp`] / [`Self::bounded_sssp`].
    #[inline]
    pub fn dist_to(&self, t: VertexId) -> Cost {
        self.seen_dist(t.idx())
    }

    /// The source of the last search, if any.
    pub fn last_source(&self) -> Option<VertexId> {
        self.source
    }

    /// Reconstructs the shortest path `s -> t` (inclusive of both
    /// endpoints) after [`Self::sssp`]. Returns `None` if unreachable.
    pub fn path_to(&self, t: VertexId) -> Option<Vec<VertexId>> {
        if self.seen_dist(t.idx()) >= INF {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t.0;
        while self.parent[cur as usize] != NO_PARENT {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Point-to-point shortest path (runs a fresh search).
    pub fn shortest_path(
        &mut self,
        g: &RoadNetwork,
        s: VertexId,
        t: VertexId,
    ) -> Option<Vec<VertexId>> {
        if s == t {
            return Some(vec![s]);
        }
        self.begin(s);
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.seen_dist(v as usize) {
                continue;
            }
            if v == t.0 {
                return self.path_to(t);
            }
            self.relax_neighbors(g, v, d);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geo::Point;

    /// 0 -2- 1 -2- 2
    /// |           |
    /// 10          1
    /// |           |
    /// 3 ----------4   (3-4 cost 2)
    fn sample() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        for i in 0..5 {
            b.add_vertex(Point::new(f64::from(i), 0.0));
        }
        let v = |i: u32| VertexId(i);
        b.add_edge_with_cost(v(0), v(1), 2).unwrap();
        b.add_edge_with_cost(v(1), v(2), 2).unwrap();
        b.add_edge_with_cost(v(0), v(3), 10).unwrap();
        b.add_edge_with_cost(v(2), v(4), 1).unwrap();
        b.add_edge_with_cost(v(3), v(4), 2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn point_to_point_distances() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        assert_eq!(e.distance(&g, VertexId(0), VertexId(0)), 0);
        assert_eq!(e.distance(&g, VertexId(0), VertexId(2)), 4);
        // 0-1-2-4-3 = 2+2+1+2 = 7 beats direct 10.
        assert_eq!(e.distance(&g, VertexId(0), VertexId(3)), 7);
        assert_eq!(e.distance(&g, VertexId(3), VertexId(0)), 7);
    }

    #[test]
    fn engine_reuse_across_searches() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        for _ in 0..100 {
            assert_eq!(e.distance(&g, VertexId(0), VertexId(3)), 7);
            assert_eq!(e.distance(&g, VertexId(4), VertexId(1)), 3);
        }
    }

    #[test]
    fn sssp_and_paths() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        e.sssp(&g, VertexId(0));
        assert_eq!(e.dist_to(VertexId(4)), 5);
        let p = e.path_to(VertexId(3)).unwrap();
        assert_eq!(
            p,
            vec![
                VertexId(0),
                VertexId(1),
                VertexId(2),
                VertexId(4),
                VertexId(3)
            ]
        );
        // Path endpoints and step-wise consistency.
        assert_eq!(*p.first().unwrap(), VertexId(0));
        assert_eq!(*p.last().unwrap(), VertexId(3));
    }

    #[test]
    fn shortest_path_trivial_and_unreachable() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        assert_eq!(
            e.shortest_path(&g, VertexId(2), VertexId(2)),
            Some(vec![VertexId(2)])
        );

        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        b.add_vertex(Point::new(2.0, 0.0)); // island vertex 2
        b.add_edge_with_cost(a, c, 1).unwrap();
        let g2 = b.finish().unwrap();
        let mut e2 = DijkstraEngine::for_network(&g2);
        assert_eq!(e2.distance(&g2, a, VertexId(2)), INF);
        assert_eq!(e2.shortest_path(&g2, a, VertexId(2)), None);
    }

    #[test]
    fn bounded_search_clamps_to_radius() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        e.bounded_sssp(&g, VertexId(0), 4);
        assert_eq!(e.dist_to(VertexId(0)), 0);
        assert_eq!(e.dist_to(VertexId(1)), 2);
        assert_eq!(e.dist_to(VertexId(2)), 4);
        assert_eq!(e.dist_to(VertexId(3)), INF); // true dist 7 > 4
        assert_eq!(e.dist_to(VertexId(4)), INF); // true dist 5 > 4
    }

    #[test]
    fn distances_match_between_sssp_and_p2p() {
        let g = sample();
        let mut e = DijkstraEngine::for_network(&g);
        e.sssp(&g, VertexId(1));
        let from_sssp: Vec<Cost> = g.vertices().map(|v| e.dist_to(v)).collect();
        for v in g.vertices() {
            assert_eq!(e.distance(&g, VertexId(1), v), from_sssp[v.idx()]);
        }
    }
}
