//! Plain-text serialization of road networks.
//!
//! A deliberately simple line-oriented format so generated cities can be
//! saved, diffed and reloaded without extra dependencies, and real OSM
//! extracts can be converted with a few lines of scripting:
//!
//! ```text
//! urpsm-network v1
//! top_speed 23
//! vertices 3
//! 0.0 0.0
//! 100.0 0.0
//! 100.0 100.0
//! edges 2
//! 0 1 435
//! 1 2 435
//! ```

use std::io::{BufRead, Write};

use crate::builder::NetworkBuilder;
use crate::error::{NetworkError, Result};
use crate::geo::Point;
use crate::graph::RoadNetwork;
use crate::{Cost, VertexId};

const MAGIC: &str = "urpsm-network v1";

/// Writes `g` in the v1 text format.
pub fn save_text<W: Write>(g: &RoadNetwork, mut w: W) -> std::io::Result<()> {
    // One big buffered writer is the caller's job; we just stream lines.
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "top_speed {}", g.top_speed_mps())?;
    writeln!(w, "vertices {}", g.num_vertices())?;
    for v in g.vertices() {
        let p = g.point(v);
        writeln!(w, "{} {}", p.x, p.y)?;
    }
    writeln!(w, "edges {}", g.num_edges())?;
    for u in g.vertices() {
        for (v, c) in g.neighbors(u) {
            if u.0 < v.0 {
                writeln!(w, "{} {} {}", u.0, v.0, c)?;
            }
        }
    }
    Ok(())
}

fn corrupt(msg: impl Into<String>) -> NetworkError {
    NetworkError::Corrupt(msg.into())
}

/// Parses a network from the v1 text format.
pub fn load_text<R: BufRead>(r: R) -> Result<RoadNetwork> {
    let mut lines = r.lines().map(|l| l.map_err(|e| corrupt(e.to_string())));
    let mut next_line = || -> Result<String> {
        lines
            .next()
            .ok_or_else(|| corrupt("unexpected end of file"))?
    };

    if next_line()?.trim() != MAGIC {
        return Err(corrupt("bad magic line"));
    }
    let speed_line = next_line()?;
    let top_speed: f64 = speed_line
        .strip_prefix("top_speed ")
        .ok_or_else(|| corrupt("missing top_speed"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad top_speed"))?;

    let vcount_line = next_line()?;
    let n: usize = vcount_line
        .strip_prefix("vertices ")
        .ok_or_else(|| corrupt("missing vertices header"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad vertex count"))?;

    let mut b = NetworkBuilder::with_capacity(n, n * 2);
    b.set_top_speed_mps(top_speed);
    for i in 0..n {
        let line = next_line()?;
        let mut it = line.split_whitespace();
        let x: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| corrupt(format!("bad x at vertex {i}")))?;
        let y: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| corrupt(format!("bad y at vertex {i}")))?;
        b.add_vertex(Point::new(x, y));
    }

    let ecount_line = next_line()?;
    let m: usize = ecount_line
        .strip_prefix("edges ")
        .ok_or_else(|| corrupt("missing edges header"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad edge count"))?;
    for i in 0..m {
        let line = next_line()?;
        let mut it = line.split_whitespace();
        let mut field = |name: &str| -> Result<u64> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| corrupt(format!("bad {name} at edge {i}")))
        };
        let u = field("u")? as u32;
        let v = field("v")? as u32;
        let c: Cost = field("cost")?;
        b.add_edge_with_cost(VertexId(u), VertexId(v), c)?;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;

    fn sample() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(230.0, 0.0));
        let v2 = b.add_vertex(Point::new(230.0, 230.0));
        b.add_straight_road(v0, v1, RoadClass::Motorway).unwrap();
        b.add_straight_road(v1, v2, RoadClass::Residential).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        save_text(&g, &mut buf).unwrap();
        let g2 = load_text(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.top_speed_mps(), g.top_speed_mps());
        for v in g.vertices() {
            assert_eq!(g2.point(v), g.point(v));
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = g2.neighbors(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let data = b"not-a-network\n";
        assert!(matches!(
            load_text(&data[..]),
            Err(NetworkError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let g = sample();
        let mut buf = Vec::new();
        save_text(&g, &mut buf).unwrap();
        let cut = buf.len() - 10;
        assert!(matches!(
            load_text(&buf[..cut]),
            Err(NetworkError::Corrupt(_)) | Err(NetworkError::InvalidEdgeCost { .. })
        ));
    }

    #[test]
    fn rejects_garbage_coordinates() {
        let data = "urpsm-network v1\ntop_speed 23\nvertices 1\nxyz 0\n";
        assert!(matches!(
            load_text(data.as_bytes()),
            Err(NetworkError::Corrupt(_))
        ));
    }
}
