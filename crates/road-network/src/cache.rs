//! LRU caching of shortest-distance and shortest-path queries.
//!
//! §6.1: "An LRU cache (ref 25) is maintained for shortest distance and path
//! queries, and is used by all the algorithms." [`LruCache`] is a
//! from-scratch map + intrusive doubly-linked-list implementation (the
//! classic O(1) design); [`LruCachedOracle`] is the decorator that puts
//! it in front of any [`DistanceOracle`]. Distances are cached under the
//! unordered pair (the network is undirected, so `dis` is symmetric);
//! paths are cached directed and reversed on a mirrored hit.
//!
//! The distance cache is **sharded** [`DIS_SHARDS`] ways by a hash of
//! the symmetric key: the parallel planning engine issues `dis`
//! queries from many threads at once, and a single mutex in front of
//! the hottest structure in the system would serialize them all.
//! Sharding trades exact global recency for per-shard recency (each
//! shard runs its own LRU over `capacity / DIS_SHARDS` entries), which
//! leaves single-threaded hit statistics essentially unchanged — the
//! hash spreads hot pairs uniformly. The path cache keeps one mutex:
//! path queries are 2–4 per *accepted* request (§5.3), never hot.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::fxhash::FxHashMap;
use crate::geo::Point;
use crate::graph::RoadNetwork;
use crate::hub_labels::HubLabels;
use crate::oracle::DistanceOracle;
use crate::{Cost, VertexId};

/// A fixed-capacity least-recently-used cache with O(1) operations.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot, `NIL` when empty.
    head: usize,
    /// Least recently used slot, `NIL` when empty.
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// `(hits, misses)` already published to the metrics registry —
    /// see [`take_stats_delta`](LruCache::take_stats_delta).
    #[cfg(feature = "obs")]
    published: (u64, u64),
}

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: std::hash::Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            #[cfg(feature = "obs")]
            published: (0, 0),
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since construction (gets only).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(hits, misses)` accumulated since the last take, for batched
    /// publication to the global metrics registry. Returns `None` — no
    /// publication due — unless `force`d or the unpublished delta has
    /// reached the batch threshold. Keeping the per-query cost to two
    /// subtractions (no atomics, no branches on shared state) is what
    /// lets the hottest structure in the system stay instrumented; the
    /// registry lags the truth by at most one batch per shard.
    #[cfg(feature = "obs")]
    pub fn take_stats_delta(&mut self, force: bool) -> Option<(u64, u64)> {
        const BATCH: u64 = 4096;
        let dh = self.hits - self.published.0;
        let dm = self.misses - self.published.1;
        if dh + dm == 0 || (!force && dh + dm < BATCH) {
            return None;
        }
        self.published = (self.hits, self.misses);
        Some((dh, dm))
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(&self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the least recently used
    /// entry when full. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        if self.map.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.push_front(i);
            None
        } else {
            // Reuse the tail slot.
            let i = self.tail;
            self.unlink(i);
            let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
            let old_val = std::mem::replace(&mut self.slots[i].value, value);
            self.map.remove(&old_key);
            self.map.insert(key, i);
            self.push_front(i);
            Some((old_key, old_val))
        }
    }

    /// Rough heap footprint in bytes (slots + map buckets).
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<K, V>>()
            + self.map.capacity() * (std::mem::size_of::<K>() + std::mem::size_of::<usize>() + 8)
    }
}

/// Unordered vertex-pair key: `dis` is symmetric on undirected networks.
///
/// **Soundness caveat.** Collapsing `(u, v)` and `(v, u)` into one slot
/// is only correct for **symmetric static metrics** — free-flow
/// distances on an undirected graph. It is *unsound* for anything
/// departure-time-aware: under a per-region congestion profile
/// `dis_at(u, v, t) ≠ dis_at(v, u, t)` in general (the two directions
/// traverse differently-stretched regions), so a symmetric key would
/// silently serve one direction's distance for the other. Time-dependent
/// queries must go through [`crate::td::TdCachedOracle`], whose key is
/// asymmetric *and* time-bucketed; [`LruCachedOracle::new`] backs this
/// up with debug-build symmetry probes of the wrapped oracle.
#[inline]
fn sym_key(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

/// Number of independently locked distance-cache shards (power of two).
pub const DIS_SHARDS: usize = 16;

/// Shard index for a symmetric key: one Fx-style multiply, taking the
/// *high* bits (the low bits of a multiplicative hash are the weak
/// ones). Same key → same shard, so hit/miss accounting per pair is
/// unchanged by sharding. The shift is derived from [`DIS_SHARDS`] so
/// retuning the constant keeps every shard reachable.
#[inline]
fn shard_of(key: (u32, u32)) -> usize {
    const SHIFT: u32 = 64 - DIS_SHARDS.trailing_zeros();
    let x = (u64::from(key.0) << 32) | u64::from(key.1);
    (x.wrapping_mul(0x517c_c1b7_2722_0a95) >> SHIFT) as usize & (DIS_SHARDS - 1)
}

/// Decorator caching `dis` and `shortest_path` results of an inner
/// oracle (exactly one cache per platform as in §6.1). The distance
/// side is sharded [`DIS_SHARDS`] ways so concurrent planner threads
/// rarely contend on the same lock — see the module docs.
pub struct LruCachedOracle<O> {
    inner: O,
    dis_shards: Vec<Mutex<LruCache<(u32, u32), Cost>>>,
    path_cache: Mutex<LruCache<(u32, u32), Vec<VertexId>>>,
}

impl<O: DistanceOracle> LruCachedOracle<O> {
    /// Wraps `inner` with `dis_capacity` distance entries (split
    /// evenly across [`DIS_SHARDS`] shards) and `path_capacity` path
    /// entries.
    ///
    /// `inner` must be a **symmetric** metric (see `sym_key`): debug
    /// builds probe a few vertex pairs in both directions at
    /// construction and panic on a mismatch. Time-dependent metrics
    /// belong behind [`crate::td::TdCachedOracle`] instead.
    pub fn new(inner: O, dis_capacity: usize, path_capacity: usize) -> Self {
        #[cfg(debug_assertions)]
        if inner.num_vertices() >= 2 {
            let n = inner.num_vertices();
            let step = (n / 5).max(1);
            let (mut u, mut v) = (0usize, n - 1);
            while u < v {
                let (a, b) = (VertexId(u as u32), VertexId(v as u32));
                debug_assert_eq!(
                    inner.dis(a, b),
                    inner.dis(b, a),
                    "LruCachedOracle caches under an unordered sym_key, which is \
                     only sound for symmetric metrics; asymmetric (e.g. \
                     time-dependent) distances must use road_network::td::TdCachedOracle"
                );
                u += step;
                v = v.saturating_sub(step);
            }
        }
        let per_shard = dis_capacity.div_ceil(DIS_SHARDS).max(1);
        LruCachedOracle {
            inner,
            dis_shards: (0..DIS_SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            path_cache: Mutex::new(LruCache::new(path_capacity)),
        }
    }

    /// Distance-cache `(hits, misses)`, summed over all shards.
    pub fn dis_hit_stats(&self) -> (u64, u64) {
        self.dis_shards.iter().fold((0, 0), |(h, m), shard| {
            let (sh, sm) = shard.lock().hit_stats();
            (h + sh, m + sm)
        })
    }

    /// Path-cache `(hits, misses)`.
    pub fn path_hit_stats(&self) -> (u64, u64) {
        self.path_cache.lock().hit_stats()
    }

    /// Approximate memory used by both caches.
    pub fn mem_bytes(&self) -> usize {
        self.dis_shards
            .iter()
            .map(|s| s.lock().mem_bytes())
            .sum::<usize>()
            + self.path_cache.lock().mem_bytes()
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: DistanceOracle> DistanceOracle for LruCachedOracle<O> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn point(&self, v: VertexId) -> Point {
        self.inner.point(v)
    }

    fn top_speed_mps(&self) -> f64 {
        self.inner.top_speed_mps()
    }

    // Structural accessors are not queries: no counter bump, no cache.
    fn backing_network(&self) -> Option<&Arc<RoadNetwork>> {
        self.inner.backing_network()
    }

    fn backing_labels(&self) -> Option<&Arc<HubLabels>> {
        self.inner.backing_labels()
    }

    fn dis(&self, u: VertexId, v: VertexId) -> Cost {
        if u == v {
            return 0;
        }
        let key = sym_key(u, v);
        let shard = &self.dis_shards[shard_of(key)];
        {
            let mut cache = shard.lock();
            if let Some(&d) = cache.get(&key) {
                // Cache hits are the hottest event in the system
                // (thousands per planning request), so the registry is
                // fed in batches: the cache already counts under its
                // own lock, and `take_stats_delta` crosses into the
                // shared atomic counters once per batch per shard.
                #[cfg(feature = "obs")]
                if let Some((hits, misses)) = cache.take_stats_delta(false) {
                    drop(cache);
                    urpsm_obs::with(|m| {
                        m.dis_cache_hits.add(hits);
                        m.dis_cache_misses.add(misses);
                    });
                }
                return d;
            }
        }
        // The lock is dropped across the inner query: two threads may
        // race to fill the same pair, which costs one duplicate inner
        // query, never a wrong answer (both insert the same value).
        let d = self.inner.dis(u, v);
        #[cfg(not(feature = "obs"))]
        {
            let _ = shard.lock().insert(key, d);
        }
        #[cfg(feature = "obs")]
        {
            let mut cache = shard.lock();
            let evicted = cache.insert(key, d).is_some();
            // A miss already paid an inner-oracle query, so it always
            // flushes the pending batch — short runs stay visible in
            // the exposition without waiting for a full batch.
            let delta = cache.take_stats_delta(true);
            drop(cache);
            urpsm_obs::with(|m| {
                if evicted {
                    m.dis_cache_evictions.inc();
                }
                if let Some((hits, misses)) = delta {
                    m.dis_cache_hits.add(hits);
                    m.dis_cache_misses.add(misses);
                }
            });
        }
        d
    }

    fn shortest_path(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        if u == v {
            return Some(vec![u]);
        }
        {
            let mut cache = self.path_cache.lock();
            if let Some(p) = cache.get(&(u.0, v.0)) {
                #[cfg(feature = "obs")]
                urpsm_obs::with(|m| m.path_cache_hits.inc());
                return Some(p.clone());
            }
            if let Some(p) = cache.get(&(v.0, u.0)) {
                #[cfg(feature = "obs")]
                urpsm_obs::with(|m| m.path_cache_hits.inc());
                let mut rev = p.clone();
                rev.reverse();
                return Some(rev);
            }
        }
        #[cfg(feature = "obs")]
        urpsm_obs::with(|m| m.path_cache_misses.inc());
        let p = self.inner.shortest_path(u, v)?;
        self.path_cache.lock().insert((u.0, v.0), p.clone());
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::oracle::{CountingOracle, DijkstraOracle};
    use std::sync::Arc;

    #[test]
    fn lru_basic_eviction_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 now MRU
        let evicted = c.insert(3, 30); // evicts 2 (LRU)
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_overwrite_does_not_grow() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn lru_hit_miss_accounting() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 1);
        c.get(&1);
        c.get(&2);
        c.get(&1);
        assert_eq!(c.hit_stats(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn lru_zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn lru_stress_against_reference_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Reference model: Vec kept in recency order.
        let mut rng = StdRng::seed_from_u64(99);
        let mut c: LruCache<u8, u8> = LruCache::new(8);
        let mut model: Vec<(u8, u8)> = Vec::new();
        for _ in 0..5_000 {
            let k = rng.gen_range(0..32u8);
            if rng.gen_bool(0.5) {
                let v = rng.gen();
                c.insert(k, v);
                if let Some(pos) = model.iter().position(|(mk, _)| *mk == k) {
                    model.remove(pos);
                }
                model.insert(0, (k, v));
                if model.len() > 8 {
                    model.pop();
                }
            } else {
                let got = c.get(&k).copied();
                let expect = model.iter().position(|(mk, _)| *mk == k).map(|pos| {
                    let e = model.remove(pos);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(got, expect);
            }
            assert_eq!(c.len(), model.len());
        }
    }

    fn path_network() -> Arc<crate::graph::RoadNetwork> {
        let mut b = NetworkBuilder::new();
        for i in 0..6 {
            b.add_vertex(Point::new(f64::from(i) * 10.0, 0.0));
        }
        for i in 1..6u32 {
            b.add_edge_with_cost(VertexId(i - 1), VertexId(i), 7)
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn cached_oracle_is_transparent_and_saves_queries() {
        let g = path_network();
        let counting = CountingOracle::new(DijkstraOracle::new(g));
        let cached = LruCachedOracle::new(counting, 64, 16);
        cached.inner().reset(); // drop the debug-build symmetry probes

        let d1 = cached.dis(VertexId(0), VertexId(5));
        let d2 = cached.dis(VertexId(5), VertexId(0)); // symmetric hit
        let d3 = cached.dis(VertexId(0), VertexId(5)); // direct hit
        assert_eq!(d1, 35);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
        assert_eq!(cached.inner().stats().dis, 1, "only one real query");
        assert_eq!(cached.dis_hit_stats(), (2, 1));

        let p1 = cached.shortest_path(VertexId(0), VertexId(3)).unwrap();
        let p2 = cached.shortest_path(VertexId(3), VertexId(0)).unwrap();
        assert_eq!(cached.inner().stats().path, 1);
        let mut p2r = p2.clone();
        p2r.reverse();
        assert_eq!(p1, p2r);
    }

    #[test]
    fn sharding_spreads_keys_and_keeps_them_stable() {
        // Same key always lands on the same shard (hit accounting), and
        // the hash actually uses more than one shard over a realistic
        // key population.
        let mut seen = std::collections::HashSet::new();
        for u in 0..64u32 {
            for v in u..64u32 {
                let k = (u, v);
                let s = shard_of(k);
                assert!(s < DIS_SHARDS);
                assert_eq!(s, shard_of(k));
                seen.insert(s);
            }
        }
        assert!(seen.len() > DIS_SHARDS / 2, "keys bunched: {seen:?}");
    }

    #[test]
    fn concurrent_dis_queries_agree_and_account_exactly() {
        let g = path_network();
        let cached = LruCachedOracle::new(CountingOracle::new(DijkstraOracle::new(g)), 256, 16);
        cached.inner().reset(); // drop the debug-build symmetry probes
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cached = &cached;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let u = VertexId(((t + i) % 6) as u32);
                        let v = VertexId((i % 6) as u32);
                        let expect = (u.0.abs_diff(v.0) as Cost) * 7;
                        assert_eq!(cached.dis(u, v), expect);
                    }
                });
            }
        });
        // Exact accounting under concurrency: every non-identity query
        // is either a hit or a miss, nothing lost to races.
        let identity = (0..THREADS)
            .flat_map(|t| (0..PER_THREAD).map(move |i| ((t + i) % 6, i % 6)))
            .filter(|(a, b)| a == b)
            .count() as u64;
        let (hits, misses) = cached.dis_hit_stats();
        assert_eq!(hits + misses, THREADS * PER_THREAD - identity);
        // The cache is tiny-keyed here (≤ 30 distinct pairs): almost
        // everything hits, and the inner oracle saw each pair at most a
        // handful of times (racing fills), never per-query.
        assert!(cached.inner().stats().dis <= misses);
    }

    #[test]
    fn cached_oracle_identity_queries_bypass() {
        let g = path_network();
        let counting = CountingOracle::new(DijkstraOracle::new(g));
        let cached = LruCachedOracle::new(counting, 4, 4);
        cached.inner().reset(); // drop the debug-build symmetry probes
        assert_eq!(cached.dis(VertexId(2), VertexId(2)), 0);
        assert_eq!(
            cached.shortest_path(VertexId(2), VertexId(2)),
            Some(vec![VertexId(2)])
        );
        assert_eq!(cached.inner().stats().dis, 0);
        assert_eq!(cached.inner().stats().path, 0);
    }
}
