//! Deep-structure properties:
//!
//! * the `arr/slack/picked` schedule arrays of §4.3 always match an
//!   independent from-scratch recomputation, through arbitrary
//!   interleavings of insertions and stop completions;
//! * the kinetic-tree baseline finds the *optimal* stop ordering on
//!   instances small enough to verify by exhaustive permutation.

use proptest::prelude::*;
use urpsm::baselines::kinetic::{KineticConfig, KineticPlanner};
use urpsm::core::insertion::linear_dp_insertion;
use urpsm::core::planner::Planner;
use urpsm::core::platform::{Outcome, PlatformState};
use urpsm::core::route::Route;
use urpsm::core::types::{Request, RequestId, StopKind, Time, Worker, WorkerId};
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::oracle::DistanceOracle;
use urpsm::network::{cost_add, Cost, VertexId, INF};

fn line_oracle(n: usize, unit: Cost) -> MatrixOracle {
    let rows: Vec<Vec<Cost>> = (0..n)
        .map(|u| (0..n).map(|v| (u.abs_diff(v) as Cost) * unit).collect())
        .collect();
    let points = (0..n)
        .map(|k| urpsm::network::geo::Point::new(k as f64, 0.0))
        .collect();
    MatrixOracle::from_matrix(&rows, points, 1_000.0)
}

fn request(id: u32, o: usize, d: usize, deadline: Time, cap: u32) -> Request {
    Request {
        class: Default::default(),
        id: RequestId(id),
        origin: VertexId(o as u32),
        destination: VertexId(d as u32),
        release: 0,
        deadline,
        penalty: 1,
        capacity: cap,
    }
}

/// Recomputes arr/picked/slack from first principles and compares.
fn check_schedule(route: &Route, oracle: &dyn DistanceOracle) {
    let n = route.len();
    // arr from legs = oracle distances.
    let mut arr = route.arr(0);
    let mut load = route.picked(0);
    for k in 1..=n {
        let d = oracle.dis(route.vertex(k - 1), route.vertex(k));
        arr = cost_add(arr, d);
        assert_eq!(route.arr(k), arr, "arr[{k}] mismatch");
        let s = &route.stops()[k - 1];
        load = match s.kind {
            StopKind::Pickup => load + s.load,
            StopKind::Delivery => load - s.load,
        };
        assert_eq!(route.picked(k), load, "picked[{k}] mismatch");
    }
    // slack from the definition (Eq. 8): min over k' > k.
    for k in 0..=n {
        let expected = (k + 1..=n)
            .map(|kk| route.ddl(kk).saturating_sub(route.arr(kk)))
            .min()
            .unwrap_or(INF);
        assert_eq!(route.slack(k), expected, "slack[{k}] mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Schedule arrays stay exact through arbitrary op sequences.
    #[test]
    fn schedule_arrays_match_first_principles(
        ops in proptest::collection::vec((0usize..60, 0usize..60, 0u8..4, 1u32..3), 1..14),
        pops in proptest::collection::vec(any::<bool>(), 14),
    ) {
        let oracle = line_oracle(60, 100);
        let mut route = Route::new(VertexId(0), 0);
        for (i, (o, d, slack_class, cap)) in ops.iter().enumerate() {
            if *o == *d { continue; }
            let direct = oracle.dis(VertexId(*o as u32), VertexId(*d as u32));
            // Mix of loose and tight deadlines.
            let deadline = route.arr(0)
                + direct
                + match slack_class {
                    0 => 200,
                    1 => 2_000,
                    2 => 20_000,
                    _ => 200_000,
                };
            let r = request(i as u32, *o, *d, deadline, *cap);
            if let Some(plan) = linear_dp_insertion(&route, 5, &r, &oracle) {
                route.apply_insertion(&plan, &r);
                check_schedule(&route, &oracle);
            }
            // Occasionally let the worker reach its next stop.
            if pops[i % pops.len()] && !route.is_empty() {
                route.pop_front_stop();
                check_schedule(&route, &oracle);
                prop_assert!(route.validate(5).is_ok());
            }
        }
    }
}

/// Exhaustive ordering search used to verify kinetic.
fn brute_force_best(
    start: VertexId,
    start_time: Time,
    onboard: u32,
    items: &[(VertexId, Time, bool, u32)], // (vertex, ddl, is_pickup, load)
    pred: &[Option<usize>],
    capacity: u32,
    oracle: &dyn DistanceOracle,
) -> Option<Cost> {
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        cur: VertexId,
        time: Time,
        onboard: u32,
        used: &mut Vec<bool>,
        items: &[(VertexId, Time, bool, u32)],
        pred: &[Option<usize>],
        capacity: u32,
        oracle: &dyn DistanceOracle,
        total: Cost,
        best: &mut Option<Cost>,
    ) {
        if used.iter().all(|&u| u) {
            *best = Some(best.map_or(total, |b: Cost| b.min(total)));
            return;
        }
        for i in 0..items.len() {
            if used[i] {
                continue;
            }
            if let Some(p) = pred[i] {
                if !used[p] {
                    continue;
                }
            }
            let (v, ddl, is_pickup, load) = items[i];
            let step = oracle.dis(cur, v);
            let t2 = time + step;
            if t2 > ddl {
                continue;
            }
            let ob2 = if is_pickup {
                onboard + load
            } else {
                onboard - load
            };
            if ob2 > capacity {
                continue;
            }
            used[i] = true;
            dfs(
                v,
                t2,
                ob2,
                used,
                items,
                pred,
                capacity,
                oracle,
                total + step,
                best,
            );
            used[i] = false;
        }
    }
    let mut best = None;
    let mut used = vec![false; items.len()];
    dfs(
        start, start_time, onboard, &mut used, items, pred, capacity, oracle, 0, &mut best,
    );
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kinetic returns the optimal ordering (verified exhaustively on
    /// ≤ 3 committed pairs + the new request = ≤ 8 stops).
    #[test]
    fn kinetic_is_exact_on_small_instances(
        pairs in proptest::collection::vec((1usize..40, 1usize..40), 0..3),
        probe in (1usize..40, 1usize..40),
    ) {
        let oracle = std::sync::Arc::new(line_oracle(40, 100));
        let worker = Worker { id: WorkerId(0), origin: VertexId(0), capacity: 3, class: Default::default() };
        let mut state = PlatformState::new(oracle.clone(), &[worker], 10_000.0, 0);

        // Commit the existing pairs through insertion (loose deadlines).
        let mut committed = Vec::new();
        for (i, (o, d)) in pairs.iter().enumerate() {
            if o == d { continue; }
            let r = request(i as u32, *o, *d, 1_000_000, 1);
            let route = &state.agent(WorkerId(0)).route;
            if let Some(plan) = linear_dp_insertion(route, 3, &r, &*oracle) {
                state.commit(WorkerId(0), &r, &plan);
                committed.push(r);
            }
        }
        prop_assume!(probe.0 != probe.1);
        let mut probe_req = request(99, probe.0, probe.1, 1_000_000, 1);
        // A penalty high enough that the decision phase never rejects —
        // this test is about ordering optimality, not economics.
        probe_req.penalty = INF / 2;

        // Brute-force optimum over all orderings.
        let route = state.agent(WorkerId(0)).route.clone();
        let mut items: Vec<(VertexId, Time, bool, u32)> = route
            .stops()
            .iter()
            .map(|s| (s.vertex, s.ddl, s.kind == StopKind::Pickup, s.load))
            .collect();
        let mut pred: Vec<Option<usize>> = route
            .stops()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.kind == StopKind::Delivery {
                    route.stops()[..i]
                        .iter()
                        .position(|p| p.kind == StopKind::Pickup && p.request == s.request)
                } else {
                    None
                }
            })
            .collect();
        let direct = oracle.dis(probe_req.origin, probe_req.destination);
        items.push((probe_req.origin, probe_req.deadline - direct, true, 1));
        pred.push(None);
        items.push((probe_req.destination, probe_req.deadline, false, 1));
        pred.push(Some(items.len() - 2));
        let brute = brute_force_best(
            route.start_vertex(),
            route.start_time(),
            route.onboard(),
            &items,
            &pred,
            3,
            &*oracle,
        )
        .map(|total| total - route.remaining_distance());

        // Kinetic's answer through the planner.
        let mut kin = KineticPlanner::from_config(KineticConfig {
            alpha: 1,
            node_budget: 1_000_000,
        });
        let out = kin.on_request(&mut state, &probe_req);
        let kin_delta = match out[0].1 {
            Outcome::Assigned { delta, .. } => Some(delta),
            Outcome::Rejected => None,
        };
        prop_assert_eq!(kin_delta, brute, "kinetic must find the optimal ordering");
    }
}
