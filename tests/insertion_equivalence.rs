//! Property tests: the three insertion operators are *extensionally
//! identical* — same `Δ*`, same positions, same plan — on arbitrary
//! metric instances, and the Euclidean lower bound never exceeds the
//! exact optimum. This is the core correctness claim of §4: the linear
//! DP is an optimization, not an approximation.

use proptest::prelude::*;
use urpsm::core::insertion::{basic_insertion, linear_dp_insertion, naive_dp_insertion};
use urpsm::core::lower_bound::insertion_lower_bound;
use urpsm::core::route::Route;
use urpsm::core::types::{Request, RequestId, Time};
use urpsm::network::geo::Point;
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::oracle::DistanceOracle;
use urpsm::network::{Cost, VertexId};

/// Builds a metric oracle from random planar points: road distance =
/// Euclidean meters × 100 (cs at 1 m/s), rounded up — rounding up
/// preserves the triangle inequality (`⌈a⌉+⌈b⌉ ≥ ⌈a+b⌉`).
fn oracle_from_points(points: &[(f64, f64)]) -> MatrixOracle {
    let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let n = pts.len();
    let rows: Vec<Vec<Cost>> = (0..n)
        .map(|u| {
            (0..n)
                .map(|v| {
                    if u == v {
                        0
                    } else {
                        (pts[u].euclidean_m(&pts[v]) * 100.0).ceil() as Cost
                    }
                })
                .collect()
        })
        .collect();
    MatrixOracle::from_matrix(&rows, pts, 1.0)
}

#[derive(Debug, Clone)]
struct Instance {
    points: Vec<(f64, f64)>,
    /// (origin, destination, deadline_slack, capacity) per request; the
    /// last one is the probe request.
    requests: Vec<(usize, usize, Time, u32)>,
    worker_capacity: u32,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (8usize..24, 2u32..6).prop_flat_map(move |(n, cap)| {
        (
            proptest::collection::vec((0.0f64..5_000.0, 0.0f64..5_000.0), n),
            proptest::collection::vec((0usize..n, 0usize..n, 1_000u64..2_000_000, 1u32..3), 1..10),
        )
            .prop_map(move |(points, requests)| Instance {
                points,
                requests,
                worker_capacity: cap,
            })
    })
}

fn mk_request(
    id: u32,
    _inst: &Instance,
    spec: (usize, usize, Time, u32),
    oracle: &MatrixOracle,
) -> Option<Request> {
    let (o, d, slack, kr) = spec;
    if o == d {
        return None;
    }
    let (o, d) = (VertexId(o as u32), VertexId(d as u32));
    Some(Request {
        class: Default::default(),
        id: RequestId(id),
        origin: o,
        destination: d,
        // Deadline: direct time plus a random slack, so instances mix
        // feasible, tight and infeasible placements.
        release: 0,
        deadline: oracle.dis(o, d) + slack,
        penalty: 1,
        capacity: kr,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// basic ≡ naive ≡ linear: identical plans, and committed routes
    /// stay feasible.
    #[test]
    fn operators_agree_exactly(inst in instance_strategy()) {
        let oracle = oracle_from_points(&inst.points);
        let mut route = Route::new(VertexId(0), 0);
        for (i, spec) in inst.requests.iter().enumerate() {
            let Some(r) = mk_request(i as u32, &inst, *spec, &oracle) else { continue };
            let pb = basic_insertion(&route, inst.worker_capacity, &r, &oracle);
            let pn = naive_dp_insertion(&route, inst.worker_capacity, &r, &oracle);
            let pl = linear_dp_insertion(&route, inst.worker_capacity, &r, &oracle);
            prop_assert_eq!(&pb, &pn, "basic vs naive at request {}", i);
            prop_assert_eq!(&pb, &pl, "basic vs linear at request {}", i);
            if let Some(plan) = pl {
                route.apply_insertion(&plan, &r);
                prop_assert_eq!(route.validate(inst.worker_capacity), Ok(()));
            }
        }
    }

    /// LBΔ* ≤ Δ* whenever an exact insertion exists; and an exact
    /// insertion existing implies the relaxed bound exists too.
    #[test]
    fn lower_bound_is_sound(inst in instance_strategy()) {
        let oracle = oracle_from_points(&inst.points);
        let mut route = Route::new(VertexId(0), 0);
        for (i, spec) in inst.requests.iter().enumerate() {
            let Some(r) = mk_request(i as u32, &inst, *spec, &oracle) else { continue };
            let direct = oracle.dis(r.origin, r.destination);
            let lb = insertion_lower_bound(&route, inst.worker_capacity, &r, direct, &oracle);
            let exact = linear_dp_insertion(&route, inst.worker_capacity, &r, &oracle);
            if let Some(plan) = &exact {
                let lb = lb.expect("exact feasible ⇒ relaxed feasible");
                prop_assert!(lb <= plan.delta, "LB {} > Δ* {}", lb, plan.delta);
            }
            if let Some(plan) = exact {
                route.apply_insertion(&plan, &r);
            }
        }
    }

    /// The committed Δ really is the route-length growth (Def. 6), and
    /// schedules recompute consistently from scratch.
    #[test]
    fn delta_equals_distance_growth(inst in instance_strategy()) {
        let oracle = oracle_from_points(&inst.points);
        let mut route = Route::new(VertexId(0), 0);
        for (i, spec) in inst.requests.iter().enumerate() {
            let Some(r) = mk_request(i as u32, &inst, *spec, &oracle) else { continue };
            if let Some(plan) = linear_dp_insertion(&route, inst.worker_capacity, &r, &oracle) {
                let before = route.remaining_distance();
                route.apply_insertion(&plan, &r);
                prop_assert_eq!(route.remaining_distance(), before + plan.delta);
                // Legs must be genuine oracle distances.
                for k in 1..=route.len() {
                    prop_assert_eq!(
                        route.leg(k),
                        oracle.dis(route.vertex(k - 1), route.vertex(k)),
                        "leg {} corrupted", k
                    );
                }
            }
        }
    }
}
