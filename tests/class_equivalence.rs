//! The heterogeneous-fleet guardrails (DESIGN.md §12):
//!
//! * **Golden pins** — a single-class fleet must be *byte-identical* to
//!   the pre-class-refactor engine for every planner family. The
//!   numbers below were captured before `VehicleClass` existed; any
//!   drift means the class machinery leaked into the homogeneous path.
//! * **Seam containment** — a class-ineligible worker is never probed:
//!   the distance oracle sees exactly the same query stream whether the
//!   ineligible worker is present (and filtered at the candidate seam)
//!   or absent from the fleet entirely.
//! * **Metadata-only mixes** — a multi-class table whose classes all
//!   have the standard profile (unit speed, no range) changes requests,
//!   schedules and costs not at all.
//!
//! Every run here pins its own `SimConfig` and fleet mix explicitly, so
//! the pins hold under all CI environment jobs (`URPSM_THREADS`,
//! `URPSM_CONGESTION`, `URPSM_TD_ORACLE`, `URPSM_FLEET`).

use std::sync::Arc;

use urpsm::baselines::prelude::*;
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::oracle::CountingOracle;
use urpsm::network::prelude::Point;
use urpsm::prelude::*;

fn golden_scenario() -> Scenario {
    // `FleetMix::single()` pins the homogeneous fleet even when the
    // suite runs under `URPSM_FLEET=mixed`.
    ScenarioBuilder::named("golden")
        .grid_city(8, 8)
        .workers(6)
        .requests(60)
        .seed(42)
        .fleet_mix(FleetMix::single())
        .build()
}

/// Runs the golden scenario under a fully pinned configuration — no
/// environment knob can reach this run.
fn run_pinned(sc: &Scenario, planner: Box<dyn Planner + '_>) -> SimOutcome {
    let start_time = sc.requests.first().map(|r| r.release).unwrap_or(0);
    let mut service = MobilityService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        planner,
        SimConfig {
            grid_cell_m: sc.grid_cell_m,
            alpha: sc.alpha,
            drain: true,
            threads: 0,
            congestion: None,
            td_oracle: false,
            classes: sc.classes.clone(),
        },
        start_time,
    );
    for event in sc.event_stream() {
        service.submit(event);
    }
    let out = service.drain();
    assert!(out.audit_errors.is_empty(), "{:?}", out.audit_errors);
    out
}

/// One pre-refactor golden: served / rejected counts and the exact
/// unified-cost decomposition.
struct Golden {
    served: usize,
    rejected: usize,
    distance: u64,
    penalty: u64,
}

fn assert_golden(name: &str, out: &SimOutcome, g: &Golden) {
    assert_eq!(out.metrics.served, g.served, "{name}: served drifted");
    assert_eq!(out.metrics.rejected, g.rejected, "{name}: rejected drifted");
    assert_eq!(
        out.metrics.unified_cost.total_distance, g.distance,
        "{name}: total distance drifted"
    );
    assert_eq!(
        out.metrics.unified_cost.total_penalty, g.penalty,
        "{name}: total penalty drifted"
    );
    assert_eq!(
        out.metrics.unified_cost.value(),
        g.distance + g.penalty,
        "{name}: α must be 1 on the golden scenario"
    );
    // The homogeneous fleet reports exactly one per-class bucket, and
    // it mirrors the aggregate.
    assert_eq!(out.metrics.per_class.len(), 1, "{name}");
    assert_eq!(out.metrics.per_class[0].served, g.served, "{name}");
}

#[test]
fn greedy_dp_matches_pre_class_golden() {
    let sc = golden_scenario();
    let out = run_pinned(&sc, Box::new(GreedyDp::new()));
    assert_golden(
        "GreedyDP",
        &out,
        &Golden {
            served: 53,
            rejected: 7,
            distance: 1_242_797,
            penalty: 1_833_000,
        },
    );
}

#[test]
fn prune_greedy_dp_matches_pre_class_golden() {
    let sc = golden_scenario();
    let out = run_pinned(&sc, Box::new(PruneGreedyDp::new()));
    assert_golden(
        "pruneGreedyDP",
        &out,
        &Golden {
            served: 53,
            rejected: 7,
            distance: 1_242_797,
            penalty: 1_833_000,
        },
    );
}

#[test]
fn kinetic_matches_pre_class_golden() {
    let sc = golden_scenario();
    let out = run_pinned(&sc, Box::new(KineticPlanner::new()));
    assert_golden(
        "kinetic",
        &out,
        &Golden {
            served: 53,
            rejected: 7,
            distance: 1_242_797,
            penalty: 1_833_000,
        },
    );
}

#[test]
fn tshare_matches_pre_class_golden() {
    let sc = golden_scenario();
    let out = run_pinned(&sc, Box::new(TSharePlanner::new()));
    assert_golden(
        "T-Share",
        &out,
        &Golden {
            served: 45,
            rejected: 15,
            distance: 1_120_429,
            penalty: 2_852_440,
        },
    );
}

#[test]
fn batch_matches_pre_class_golden() {
    let sc = golden_scenario();
    let out = run_pinned(&sc, Box::new(BatchPlanner::new()));
    assert_golden(
        "batch",
        &out,
        &Golden {
            served: 53,
            rejected: 7,
            distance: 1_264_386,
            penalty: 1_610_310,
        },
    );
}

// ── seam containment ─────────────────────────────────────────────────

fn line_counting_oracle(n: usize) -> Arc<CountingOracle<MatrixOracle>> {
    let rows: Vec<Vec<u64>> = (0..n)
        .map(|u| (0..n).map(|v| (u.abs_diff(v) as u64) * 150).collect())
        .collect();
    let points = (0..n).map(|k| Point::new(k as f64, 0.0)).collect();
    Arc::new(CountingOracle::new(MatrixOracle::from_matrix(
        &rows, points, 1.0,
    )))
}

fn two_class_table() -> Arc<ClassTable> {
    Arc::new(ClassTable::new(vec![
        VehicleClass::standard(),
        VehicleClass {
            name: "cargo",
            capacity: 2,
            speed_permille: 1_000,
            range: None,
        },
    ]))
}

/// A class-ineligible worker is *never probed*: the oracle's query
/// stream with the ineligible worker present (filtered at the
/// candidate seam) equals the stream with that worker absent from the
/// fleet entirely. If eligibility were decided later — inside the DP,
/// say — the present-but-ineligible worker would add lower-bound or
/// probe queries and the counts would differ.
#[test]
fn class_ineligible_worker_is_never_probed() {
    let mk_worker = |id: u32, v: u32, class: ClassId| Worker {
        class,
        id: WorkerId(id),
        origin: VertexId(v),
        capacity: 4,
    };
    // The request only admits class 0, yet the *nearest* worker (at
    // vertex 40) is class 1 — the strongest bait for a planner that
    // filters too late.
    let request = Request {
        class: ClassConstraint::Only(ClassId(0)),
        id: RequestId(1),
        origin: VertexId(42),
        destination: VertexId(50),
        release: 0,
        deadline: 1_000_000,
        penalty: u64::MAX / 4,
        capacity: 1,
    };

    let mut planners: Vec<fn() -> Box<dyn Planner>> = Vec::new();
    planners.push(|| Box::new(GreedyDp::new()));
    planners.push(|| Box::new(PruneGreedyDp::new()));
    planners.push(|| Box::new(KineticPlanner::new()));

    for mk in planners {
        let run = |workers: &[Worker]| -> (Outcome, u64) {
            let oracle = line_counting_oracle(100);
            let mut state = PlatformState::new(oracle.clone(), workers, 20.0, 0);
            state.set_classes(two_class_table());
            let mut planner = mk();
            let out = planner.on_request(&mut state, &request);
            assert_eq!(out.len(), 1);
            (out[0].1, oracle.stats().dis)
        };

        // Full fleet: bait worker (class 1) flanked by eligible ones.
        let (out_full, q_full) = run(&[
            mk_worker(0, 0, ClassId(0)),
            mk_worker(1, 40, ClassId(1)),
            mk_worker(2, 80, ClassId(0)),
        ]);
        // Same fleet with the ineligible worker simply gone.
        let (out_without, q_without) =
            run(&[mk_worker(0, 0, ClassId(0)), mk_worker(1, 80, ClassId(0))]);

        match (out_full, out_without) {
            (
                Outcome::Assigned { worker, delta },
                Outcome::Assigned {
                    worker: w2,
                    delta: d2,
                },
            ) => {
                // Same physical worker (vertex 80) wins in both runs,
                // under its respective dense id, at the same cost.
                assert_eq!(worker, WorkerId(2));
                assert_eq!(w2, WorkerId(1));
                assert_eq!(delta, d2);
            }
            other => panic!("expected assignments, got {other:?}"),
        }
        assert_eq!(
            q_full, q_without,
            "the ineligible worker leaked distance queries past the candidate seam"
        );
    }
}

/// A multi-class table whose classes all carry the standard profile is
/// pure metadata: same events, same costs, same schedules as the
/// homogeneous run — only the per-class metrics split.
#[test]
fn standard_profile_mix_is_byte_identical_to_single_class() {
    let sc = golden_scenario();
    let single = run_pinned(&sc, Box::new(PruneGreedyDp::new()));

    // Same fleet, same requests, but workers alternate between two
    // standard-profile classes.
    let mut workers = sc.workers.clone();
    for (i, w) in workers.iter_mut().enumerate() {
        w.class = ClassId((i % 2) as u16);
    }
    let start_time = sc.requests.first().map(|r| r.release).unwrap_or(0);
    let mut service = MobilityService::new(
        sc.oracle.clone(),
        workers,
        Box::new(PruneGreedyDp::new()),
        SimConfig {
            grid_cell_m: sc.grid_cell_m,
            alpha: sc.alpha,
            drain: true,
            threads: 0,
            congestion: None,
            td_oracle: false,
            classes: Some(two_class_table()),
        },
        start_time,
    );
    for event in sc.event_stream() {
        service.submit(event);
    }
    let mixed = service.drain();
    assert!(mixed.audit_errors.is_empty());

    assert_eq!(single.events, mixed.events, "event logs must be identical");
    assert_eq!(single.metrics.unified_cost, mixed.metrics.unified_cost);
    assert_eq!(single.metrics.served, mixed.metrics.served);
    // The only visible difference: the breakdown now has two buckets
    // that partition the aggregate.
    assert_eq!(mixed.metrics.per_class.len(), 2);
    assert_eq!(
        mixed
            .metrics
            .per_class
            .iter()
            .map(|c| c.served)
            .sum::<usize>(),
        mixed.metrics.served
    );
    assert_eq!(
        mixed
            .metrics
            .per_class
            .iter()
            .map(|c| c.driven_distance)
            .sum::<u64>(),
        mixed.metrics.driven_distance
    );
}
