//! Crash-recovery determinism for the ingestion service (DESIGN.md
//! §9): kill a server at an arbitrary event index, recover from
//! snapshot + WAL, and the completed run must be **byte-identical** —
//! event log, every reply, audit verdict, unified cost — to a run
//! that never crashed. Pinned at `K = 1` and `K = 4`, with torn-tail
//! and bit-flipped WAL corruption on top.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use urpsm::prelude::*;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::named("recovery")
        .grid_city(10, 10)
        .workers(6)
        .requests(90)
        .horizon(30 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .cancel_rate(0.15)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(1, 2)
        .seed(seed)
        .build()
}

fn backend(sc: &Scenario, shards: usize) -> Backend<'static> {
    if shards <= 1 {
        Backend::single(urpsm::service(sc, Box::new(PruneGreedyDp::new())))
    } else {
        Backend::Sharded(urpsm::sharded(sc, shards, |_| {
            Box::new(PruneGreedyDp::new())
        }))
    }
}

fn wal_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "urpsm-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        wal: Some(WalConfig {
            dir: dir.to_path_buf(),
            snapshot_every: 8,
        }),
        ..ServerConfig::default()
    }
}

/// Zeroes the wall-clock field so metrics compare structurally.
fn normalized(mut m: SimMetrics) -> SimMetrics {
    m.planning_time = std::time::Duration::ZERO;
    m
}

/// The uninterrupted reference run (WAL on, like the crashed runs).
fn baseline(sc: &Scenario, shards: usize, dir: &std::path::Path) -> ServerOutcome {
    let server = IngestServer::new(backend(sc, shards), config(dir)).expect("open server");
    let outcome = server.run(sc.event_stream()).expect("run");
    assert!(
        outcome.audit_errors.is_empty(),
        "{:?}",
        outcome.audit_errors
    );
    let _ = std::fs::remove_dir_all(dir);
    outcome
}

/// Feeds the first `k` events, syncs, and "crashes" (drops the server
/// without draining). Returns nothing — the state of interest is on
/// disk.
fn run_and_crash(sc: &Scenario, shards: usize, dir: &std::path::Path, k: usize) {
    let mut server = IngestServer::new(backend(sc, shards), config(dir)).expect("open server");
    let tx = server.handle();
    for ev in sc.event_stream().into_iter().take(k) {
        tx.send(ev).expect("server alive");
    }
    drop(tx);
    while server.step().expect("tick").is_some() {}
    server.sync().expect("sync");
    // Crash: the server is dropped mid-run; only WAL + snapshot remain.
}

/// Recovers from `dir`, feeds the not-yet-logged tail of the stream,
/// and returns the completed outcome plus the recovery report.
fn recover_and_finish(
    sc: &Scenario,
    shards: usize,
    dir: &std::path::Path,
) -> (ServerOutcome, RecoveryReport) {
    let (server, report) = recover(backend(sc, shards), config(dir)).expect("recover");
    let tx = server.handle();
    for ev in sc
        .event_stream()
        .into_iter()
        .skip(report.events_replayed as usize)
    {
        tx.send(ev).expect("server alive");
    }
    drop(tx);
    let outcome = server.finish().expect("finish");
    let _ = std::fs::remove_dir_all(dir);
    (outcome, report)
}

fn assert_byte_identical(tag: &str, full: &ServerOutcome, recovered: &ServerOutcome) {
    assert_eq!(full.events, recovered.events, "{tag}: event log");
    assert_eq!(full.replies, recovered.replies, "{tag}: reply log");
    assert_eq!(
        normalized(full.metrics.clone()),
        normalized(recovered.metrics.clone()),
        "{tag}: metrics"
    );
    assert!(
        recovered.audit_errors.is_empty(),
        "{tag}: {:?}",
        recovered.audit_errors
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash at any event index; recovery completes byte-identically.
    #[test]
    fn crash_at_any_index_recovers_byte_identically(seed in 1u64..4, frac in 0.0f64..1.0) {
        let sc = scenario(seed);
        let n = sc.event_stream().len();
        let k = ((n as f64) * frac) as usize;
        for shards in [1usize, 4] {
            let full = baseline(&sc, shards, &wal_dir("base"));
            let dir = wal_dir("crash");
            run_and_crash(&sc, shards, &dir, k);
            let (recovered, report) = recover_and_finish(&sc, shards, &dir);
            prop_assert_eq!(report.events_replayed, k as u64, "K={}", shards);
            prop_assert!(!report.torn_tail, "clean crash has no torn tail");
            prop_assert_eq!(
                report.snapshot_verified, Some(true),
                "synced snapshot must verify (K={})", shards
            );
            assert_byte_identical(&format!("K={shards} k={k}"), &full, &recovered);
        }
    }
}

#[test]
fn torn_tail_truncation_is_detected_and_recovered() {
    let sc = scenario(11);
    let n = sc.event_stream().len();
    for shards in [1usize, 4] {
        let full = baseline(&sc, shards, &wal_dir("base"));
        let dir = wal_dir("torn");
        run_and_crash(&sc, shards, &dir, n / 2);

        // Tear the final record: chop three bytes off the WAL, as if
        // the process died mid-write.
        let wal = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal).expect("wal exists").len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open wal");
        f.set_len(len - 3).expect("truncate");
        drop(f);

        let (recovered, report) = recover_and_finish(&sc, shards, &dir);
        assert!(report.torn_tail, "K={shards}: torn tail must be flagged");
        assert_eq!(
            report.events_replayed,
            (n / 2 - 1) as u64,
            "K={shards}: exactly the torn record is lost"
        );
        // The snapshot vouched for one event more than the WAL now
        // holds — the mismatch is reported, not papered over.
        assert_eq!(report.snapshot_verified, Some(false), "K={shards}");
        assert_byte_identical(&format!("K={shards} torn"), &full, &recovered);
    }
}

#[test]
fn bit_flip_in_final_record_is_detected_and_recovered() {
    let sc = scenario(12);
    let n = sc.event_stream().len();
    for shards in [1usize, 4] {
        let full = baseline(&sc, shards, &wal_dir("base"));
        let dir = wal_dir("flip");
        run_and_crash(&sc, shards, &dir, n / 3);

        // Flip one bit in the final record's payload: the checksum
        // must catch it and recovery must drop exactly that record.
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&wal, &bytes).expect("rewrite wal");

        let (recovered, report) = recover_and_finish(&sc, shards, &dir);
        assert!(report.torn_tail, "K={shards}: corruption must be flagged");
        assert_eq!(report.events_replayed, (n / 3 - 1) as u64, "K={shards}");
        assert_eq!(report.snapshot_verified, Some(false), "K={shards}");
        assert_byte_identical(&format!("K={shards} flip"), &full, &recovered);
    }
}

#[test]
fn recovery_without_a_wal_starts_fresh() {
    let sc = scenario(13);
    let dir = wal_dir("fresh");
    let (server, report) = recover(backend(&sc, 1), config(&dir)).expect("recover");
    assert_eq!(report.events_replayed, 0);
    assert!(!report.torn_tail);
    assert_eq!(report.snapshot_verified, None);
    let outcome = server.run(sc.event_stream()).expect("run");
    assert!(outcome.audit_errors.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
