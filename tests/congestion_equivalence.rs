//! The congestion differential suite (DESIGN.md §7), pinned byte for
//! byte:
//!
//! * the **flat** profile (every multiplier exactly 1.0) is the
//!   identity — event logs and costs equal the no-profile run at every
//!   planner width (`URPSM_THREADS`-style 1/4) and shard count (1/4);
//! * a **peak** profile strictly increases planned arrival times on a
//!   pinned trace while leaving the free-flow economics (Δ*, planned
//!   distance) untouched;
//! * cancellations in congested runs keep the economics exact:
//!   `driven == Σ planned` per worker, plus the audit's replayed
//!   ledger `planned == Σ deltas − Σ freed`.

use std::sync::Arc;

use urpsm::prelude::*;
use urpsm_core::event::PlatformEvent;

fn run(sc: &Scenario, threads: usize, congestion: Option<Arc<CongestionProfile>>) -> SimOutcome {
    let cfg = PlannerConfig {
        alpha: sc.alpha,
        strict_economics: false,
        threads,
    };
    let planner: Box<dyn Planner> = Box::new(PruneGreedyDp::from_config(cfg));
    let stream = sc.event_stream();
    let start = stream.first().map_or(0, PlatformEvent::time);
    let mut service = MobilityService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        planner,
        SimConfig {
            grid_cell_m: sc.grid_cell_m,
            alpha: sc.alpha,
            drain: true,
            threads: 0,
            congestion,
            classes: sc.classes.clone(),
            // Env default on purpose: the CI td-oracle job runs this
            // whole suite with URPSM_TD_ORACLE=1, so every identity
            // gate here also pins the TD provider.
            ..SimConfig::default()
        },
        start,
    );
    for event in stream {
        service.submit(event);
    }
    service.drain()
}

fn run_sharded(
    sc: &Scenario,
    shards: usize,
    congestion: Option<Arc<CongestionProfile>>,
) -> ShardedOutcome {
    let stream = sc.event_stream();
    let start = stream.first().map_or(0, PlatformEvent::time);
    let mut service = ShardedService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        |_| Box::new(PruneGreedyDp::new()) as Box<dyn Planner>,
        ShardConfig {
            shards,
            threads: 1,
            sim: SimConfig {
                grid_cell_m: sc.grid_cell_m,
                alpha: sc.alpha,
                drain: true,
                threads: 0,
                congestion,
                classes: sc.classes.clone(),
                ..SimConfig::default()
            },
            ..ShardConfig::default()
        },
        start,
    );
    for event in stream {
        service.submit(event);
    }
    service.drain()
}

/// A churny scenario: cancellations and fleet churn interleave route
/// surgery with planning, the worst case for schedule bookkeeping.
fn churny_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::named("congestion-eq")
        .grid_city(10, 10)
        .workers(6)
        .requests(140)
        .horizon(35 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .cancel_rate(0.15)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(2, 2)
        .seed(seed)
        .build()
}

fn flat() -> Option<Arc<CongestionProfile>> {
    Some(Arc::new(CongestionProfile::flat()))
}

#[test]
fn flat_profile_is_byte_identical_across_threads() {
    for seed in [3u64, 2018] {
        let sc = churny_scenario(seed);
        let base = run(&sc, 1, None);
        assert!(base.audit_errors.is_empty(), "seed {seed}");
        assert!(
            base.metrics.cancelled > 0,
            "seed {seed}: scenario must exercise the cancel path"
        );
        for threads in [1usize, 4] {
            for (label, congestion) in [("none", None), ("flat", flat())] {
                let other = run(&sc, threads, congestion);
                assert_eq!(
                    base.events, other.events,
                    "seed {seed} threads {threads} profile {label}: event log"
                );
                assert_eq!(
                    base.metrics.unified_cost, other.metrics.unified_cost,
                    "seed {seed} threads {threads} profile {label}: unified cost"
                );
                assert_eq!(
                    base.metrics.driven_distance, other.metrics.driven_distance,
                    "seed {seed} threads {threads} profile {label}: driven"
                );
                assert!(other.audit_errors.is_empty());
            }
        }
    }
}

#[test]
fn flat_profile_is_byte_identical_across_shards() {
    let sc = churny_scenario(2018);
    let base = run(&sc, 1, None);
    assert!(base.audit_errors.is_empty());
    for shards in [1usize, 4] {
        let none = run_sharded(&sc, shards, None);
        let flat_run = run_sharded(&sc, shards, flat());
        assert!(none.audit_errors.is_empty(), "shards {shards}");
        assert!(flat_run.audit_errors.is_empty(), "shards {shards}");
        assert_eq!(
            none.events, flat_run.events,
            "shards {shards}: flat profile changed the sharded log"
        );
        assert_eq!(none.metrics.unified_cost, flat_run.metrics.unified_cost);
        if shards == 1 {
            // One shard is byte-identical to the plain service — with
            // and without the (identity) profile.
            assert_eq!(base.events, flat_run.events);
        }
    }
}

/// Pinned trace: one worker on a line city, three sequential rides
/// released inside the morning peak. The two-peak profile must strictly
/// increase every planned arrival while leaving Δ* (free-flow
/// distance) untouched.
#[test]
fn peak_profile_strictly_increases_planned_arrivals() {
    use road_network::congestion::HOUR_CS;
    use urpsm_core::types::{Request, RequestId, Worker, WorkerId};

    let mut b = NetworkBuilder::new();
    for i in 0..40 {
        b.add_vertex(Point::new(f64::from(i), 0.0));
    }
    for i in 1..40u32 {
        b.add_edge_with_cost(VertexId(i - 1), VertexId(i), 100)
            .unwrap();
    }
    b.set_top_speed_mps(1.0);
    let oracle: Arc<dyn DistanceOracle> =
        Arc::new(MatrixOracle::from_network(&b.finish().unwrap()));
    let fleet = vec![Worker {
        class: Default::default(),
        id: WorkerId(0),
        origin: VertexId(0),
        capacity: 4,
    }];
    let t0 = 8 * HOUR_CS; // inside the 1.7× bucket
    let requests: Vec<Request> = [(0u32, 5u32, 10u32), (1, 12, 20), (2, 25, 30)]
        .iter()
        .map(|&(id, o, d)| Request {
            class: Default::default(),
            id: RequestId(id),
            origin: VertexId(o),
            destination: VertexId(d),
            release: t0 + u64::from(id) * 1_000,
            deadline: t0 + 4 * HOUR_CS,
            penalty: 1_000_000_000,
            capacity: 1,
        })
        .collect();

    let outcome = |congestion: Option<Arc<CongestionProfile>>| {
        let sim = Simulation::new(
            oracle.clone(),
            fleet.clone(),
            requests.clone(),
            SimConfig {
                grid_cell_m: 2_000.0,
                alpha: 1,
                drain: true,
                threads: 0,
                congestion,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let mut planner = PruneGreedyDp::new();
        sim.run(&mut planner)
    };

    let free = outcome(None);
    let jam = outcome(Some(Arc::new(CongestionProfile::chengdu_two_peak())));
    assert!(free.audit_errors.is_empty(), "{:?}", free.audit_errors);
    assert!(jam.audit_errors.is_empty(), "{:?}", jam.audit_errors);

    // Same decisions, same free-flow economics.
    let decisions = |o: &SimOutcome| -> Vec<SimEvent> {
        o.events
            .iter()
            .filter(|e| matches!(e, SimEvent::Assigned { .. } | SimEvent::Rejected { .. }))
            .copied()
            .collect()
    };
    assert_eq!(decisions(&free), decisions(&jam));
    assert_eq!(free.metrics.unified_cost, jam.metrics.unified_cost);
    assert_eq!(free.metrics.driven_distance, jam.metrics.driven_distance);

    // Every pickup/delivery happens strictly later under the peak
    // profile (the whole trace sits in stretched buckets).
    let stops = |o: &SimOutcome| -> Vec<(RequestId, u64)> {
        o.events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::Pickup { t, r, .. } => Some((r, t)),
                SimEvent::Delivery { t, r, .. } => Some((r, t)),
                _ => None,
            })
            .collect()
    };
    let (free_stops, jam_stops) = (stops(&free), stops(&jam));
    assert_eq!(free_stops.len(), 6);
    assert_eq!(jam_stops.len(), 6);
    for ((r_a, t_free), (r_b, t_jam)) in free_stops.iter().zip(&jam_stops) {
        assert_eq!(r_a, r_b, "stop order must be preserved");
        assert!(
            t_jam > t_free,
            "{r_a}: peak arrival {t_jam} not after free-flow {t_free}"
        );
    }
    // Pinned head of the trace: the first pickup (vertex 5, 500 cs of
    // free-flow driving from t0) stretches by exactly 1.7×.
    assert_eq!(free_stops[0], (RequestId(0), t0 + 500));
    assert_eq!(jam_stops[0], (RequestId(0), t0 + 850));
}

/// The satellite-3 acceptance: cancellations in congested runs keep
/// `driven == Σ planned` exact — including across shards.
#[test]
fn congested_cancellations_keep_economics_exact() {
    let sc = churny_scenario(2018);
    let jam: Option<Arc<CongestionProfile>> = Some(Arc::new(
        CongestionProfile::constant("x1.4", 1.4).expect("valid profile"),
    ));

    let out = run(&sc, 1, jam.clone());
    assert_eq!(out.audit_errors, Vec::<String>::new());
    assert!(out.metrics.cancelled > 0, "cancel path must run congested");
    assert_eq!(
        out.metrics.driven_distance,
        out.state.total_assigned_distance(),
        "driven == Σ planned must survive congested cancellations"
    );

    // Multi-threaded planning under congestion stays deterministic.
    let par = run(&sc, 4, jam.clone());
    assert_eq!(out.events, par.events, "threads changed a congested log");

    // And the geo-sharded plane keeps every shard's ledger exact.
    let sharded = run_sharded(&sc, 4, jam);
    assert_eq!(sharded.audit_errors, Vec::<String>::new());
    assert_eq!(
        sharded.metrics.driven_distance,
        sharded.total_assigned_distance()
    );
}
