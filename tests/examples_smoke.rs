//! Smoke test: every example binary must run to successful exit.
//!
//! Examples are the repo's executable documentation; this keeps them
//! from rotting silently. They are run through `cargo run --example`
//! sequentially in one test so concurrent invocations don't fight over
//! the target-directory build lock.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "ridesharing_day",
    "food_delivery",
    "objective_presets",
    "hardness_adversary",
    "live_service",
    "sharded_city",
    "ingest_service",
];

#[test]
fn all_examples_exit_successfully() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .args(["run", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
