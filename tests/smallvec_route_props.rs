//! The inline-capacity storage swap must be invisible.
//!
//! PR 6 re-based `Route`'s five schedule arrays (and the motion plane's
//! leg paths) from `Vec` onto the vendored inline-capacity `SmallVec`:
//! routes of ≤ 8 stops — the steady-state common case — never touch the
//! heap, longer routes spill and keep working. Two property suites pin
//! the swap down:
//!
//! * a **differential** suite driving `SmallVec<u32, 4>` and `Vec<u32>`
//!   through the same operation sequences, crossing the inline→spill
//!   boundary in both directions — every observation must match;
//! * a **route-model** suite driving `Route` through
//!   insert/remove/pop/snap/replace-tail sequences deep past the
//!   8-stop inline capacity while checking the stop sequence against a
//!   plain-`Vec` shadow model and the schedule against a
//!   first-principles recomputation.

use proptest::prelude::*;
use smallvec::SmallVec;
use urpsm::core::insertion::linear_dp_insertion;
use urpsm::core::route::Route;
use urpsm::core::types::{Request, RequestId, Stop, StopKind, Time};
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::oracle::DistanceOracle;
use urpsm::network::{cost_add, Cost, VertexId};

// ---------------------------------------------------------------------
// Differential: SmallVec<u32, 4> vs Vec<u32>.
// ---------------------------------------------------------------------

/// One storage operation, encoded for proptest generation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
    Insert(usize, u32),
    Remove(usize),
    Truncate(usize),
    Clear,
    ExtendFromSlice(u32, usize),
    Resize(usize, u32),
    InsertFromSlice(usize, u32, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u32>().prop_map(Op::Push),
        Just(Op::Pop),
        (0usize..16, any::<u32>()).prop_map(|(i, v)| Op::Insert(i, v)),
        (0usize..16).prop_map(Op::Remove),
        (0usize..16).prop_map(Op::Truncate),
        Just(Op::Clear),
        (any::<u32>(), 0usize..6).prop_map(|(v, n)| Op::ExtendFromSlice(v, n)),
        (0usize..12, any::<u32>()).prop_map(|(n, v)| Op::Resize(n, v)),
        (0usize..16, any::<u32>(), 0usize..6).prop_map(|(i, v, n)| Op::InsertFromSlice(i, v, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every observation of the shim matches `Vec` through arbitrary
    /// op sequences that spill and un-spill.
    #[test]
    fn smallvec_matches_vec(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut sv: SmallVec<u32, 4> = SmallVec::new();
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    sv.push(v);
                    model.push(v);
                }
                Op::Pop => prop_assert_eq!(sv.pop(), model.pop()),
                Op::Insert(i, v) => {
                    let i = i % (model.len() + 1);
                    sv.insert(i, v);
                    model.insert(i, v);
                }
                Op::Remove(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        prop_assert_eq!(sv.remove(i), model.remove(i));
                    }
                }
                Op::Truncate(n) => {
                    sv.truncate(n);
                    model.truncate(n);
                }
                Op::Clear => {
                    sv.clear();
                    model.clear();
                }
                Op::ExtendFromSlice(v, n) => {
                    let chunk: Vec<u32> = (0..n as u32).map(|k| v.wrapping_add(k)).collect();
                    sv.extend_from_slice(&chunk);
                    model.extend_from_slice(&chunk);
                }
                Op::Resize(n, v) => {
                    sv.resize(n, v);
                    model.resize(n, v);
                }
                Op::InsertFromSlice(i, v, n) => {
                    let i = i % (model.len() + 1);
                    let chunk: Vec<u32> = (0..n as u32).map(|k| v.wrapping_add(k)).collect();
                    sv.insert_from_slice(i, &chunk);
                    model.splice(i..i, chunk.iter().copied());
                }
            }
            prop_assert_eq!(sv.as_slice(), model.as_slice());
            prop_assert_eq!(sv.len(), model.len());
            prop_assert_eq!(sv.is_empty(), model.is_empty());
            // The inline representation really is used while it fits.
            if !sv.spilled() {
                prop_assert!(sv.len() <= 4);
            }
        }
        prop_assert_eq!(sv.to_vec(), model.clone());
        // Round-trip through `clone_from` (the probe-route path).
        let mut dst: SmallVec<u32, 4> = SmallVec::from_slice(&[7; 9]);
        dst.clone_from(&sv);
        prop_assert_eq!(dst.as_slice(), model.as_slice());
    }
}

// ---------------------------------------------------------------------
// Route model: inline-array routes behave identically past the spill
// boundary, checked against a plain-Vec shadow of the stop sequence
// and a from-scratch schedule recomputation.
// ---------------------------------------------------------------------

fn line_oracle(n: usize) -> MatrixOracle {
    let rows: Vec<Vec<Cost>> = (0..n)
        .map(|u| (0..n).map(|v| (u.abs_diff(v) as Cost) * 100).collect())
        .collect();
    let points = (0..n)
        .map(|k| urpsm::network::geo::Point::new(k as f64, 0.0))
        .collect();
    MatrixOracle::from_matrix(&rows, points, 1_000.0)
}

fn request(id: u32, o: usize, d: usize, deadline: Time) -> Request {
    Request {
        class: Default::default(),
        id: RequestId(id),
        origin: VertexId(o as u32),
        destination: VertexId(d as u32),
        release: 0,
        deadline,
        penalty: 1,
        capacity: 1,
    }
}

/// The stops `apply_insertion` creates (Eq. 6 deadlines).
fn pickup_stop(r: &Request, direct: Cost) -> Stop {
    Stop {
        request: r.id,
        vertex: r.origin,
        kind: StopKind::Pickup,
        load: r.capacity,
        ddl: r.pickup_deadline(direct),
    }
}

fn delivery_stop(r: &Request) -> Stop {
    Stop {
        request: r.id,
        vertex: r.destination,
        kind: StopKind::Delivery,
        load: r.capacity,
        ddl: r.deadline,
    }
}

/// Checks the route against the shadow stop list and recomputes the
/// arrival schedule from the oracle.
fn check_against_shadow(route: &Route, shadow: &[Stop], oracle: &dyn DistanceOracle) {
    assert_eq!(route.len(), shadow.len());
    assert_eq!(route.stops(), shadow);
    assert!(route.validate(8).is_ok());
    // `vertices()` (the borrowing iterator) agrees with the stop list.
    let verts: Vec<VertexId> = route.vertices().collect();
    assert_eq!(verts[0], route.start_vertex());
    for (k, s) in shadow.iter().enumerate() {
        assert_eq!(verts[k + 1], s.vertex);
    }
    // Arrival times from first principles.
    let mut arr = route.arr(0);
    let mut prev = route.start_vertex();
    for (k, s) in shadow.iter().enumerate() {
        arr = cost_add(arr, oracle.dis(prev, s.vertex));
        assert_eq!(route.arr(k + 1), arr, "arr[{}] mismatch", k + 1);
        prev = s.vertex;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert/remove/pop/snap/replace-tail sequences deep past the
    /// 8-stop inline capacity keep `Route` exactly equal to its shadow.
    #[test]
    fn route_matches_shadow_across_spill(
        pairs in proptest::collection::vec((1usize..50, 1usize..50), 1..10),
        actions in proptest::collection::vec(0u8..4, 10),
    ) {
        let oracle = line_oracle(50);
        let mut route = Route::new(VertexId(0), 0);
        let mut shadow: Vec<Stop> = Vec::new();
        let mut spilled_once = false;
        for (i, (o, d)) in pairs.iter().enumerate() {
            if o == d { continue; }
            let r = request(i as u32, *o, *d, 1_000_000);
            if let Some(plan) = linear_dp_insertion(&route, 8, &r, &oracle) {
                // Mirror the splice on the shadow before applying:
                // `o_r` right after `l_i`, `d_r` right after `l_j` in
                // the original indexing (`i = j` ⇒ back to back).
                shadow.insert(plan.pickup_after, pickup_stop(&r, plan.direct));
                shadow.insert(plan.delivery_after + 1, delivery_stop(&r));
                route.apply_insertion(&plan, &r);
                check_against_shadow(&route, &shadow, &oracle);
            }
            match actions[i % actions.len()] {
                // Let the worker reach its next stop.
                0 if !route.is_empty() => {
                    let (stop, _) = route.pop_front_stop();
                    assert_eq!(stop, shadow.remove(0));
                    check_against_shadow(&route, &shadow, &oracle);
                }
                // Cancel the most recent still-pending request (the
                // route refuses if its pickup already happened).
                1 => {
                    if let Some(last) = shadow.last().map(|s| s.request) {
                        if route.remove_request(last, |a, b| oracle.dis(a, b)).is_some() {
                            shadow.retain(|s| s.request != last);
                        }
                        check_against_shadow(&route, &shadow, &oracle);
                    }
                }
                // Identity tail replacement: exercises the
                // truncate+extend storage path without changing the
                // schedule (legs re-derived from the oracle).
                2 if !route.is_empty() => {
                    let stops: Vec<Stop> = shadow.clone();
                    let mut legs: Vec<Cost> = Vec::new();
                    let mut prev = route.start_vertex();
                    for s in &stops {
                        legs.push(oracle.dis(prev, s.vertex));
                        prev = s.vertex;
                    }
                    route.replace_tail(&stops, &legs);
                    check_against_shadow(&route, &shadow, &oracle);
                }
                // Snap the worker onto the midpoint of its first leg
                // (the motion plane's mid-leg re-anchoring).
                3 if !route.is_empty() => {
                    let (a, b) = (route.start_vertex().0, shadow[0].vertex.0);
                    let v = VertexId(a.min(b) + a.abs_diff(b) / 2);
                    let remaining = oracle.dis(v, shadow[0].vertex);
                    let time = route.arr(1) - remaining;
                    route.snap_on_leg(v, time, remaining);
                    check_against_shadow(&route, &shadow, &oracle);
                }
                _ => {}
            }
            spilled_once |= route.len() > 8;
        }
        // Keep the generator honest: most cases must actually cross
        // the inline boundary at some point (10 pairs = 20 stops), and
        // shrinkage back below it must also have been exercised by the
        // pop/remove actions above. We can't assert per-case, but the
        // deterministic test below pins the boundary crossing exactly.
        let _ = spilled_once;
    }
}

/// Deterministic inline→spill→inline round trip with full checks at
/// every step (the proptest above crosses the boundary statistically;
/// this one does it by construction).
#[test]
fn route_spills_and_returns_inline_without_observable_change() {
    let oracle = line_oracle(64);
    let mut route = Route::new(VertexId(0), 0);
    let mut shadow: Vec<Stop> = Vec::new();
    // 6 nested requests = 12 stops: well past the 8-stop inline cap.
    for i in 0..6u32 {
        let o = 2 + (i as usize) * 3;
        let r = request(i, o, o + 20, 1_000_000);
        let plan = linear_dp_insertion(&route, 8, &r, &oracle).expect("roomy deadline");
        shadow.insert(plan.pickup_after, pickup_stop(&r, plan.direct));
        shadow.insert(plan.delivery_after + 1, delivery_stop(&r));
        route.apply_insertion(&plan, &r);
        check_against_shadow(&route, &shadow, &oracle);
    }
    assert!(route.len() > 8, "must have crossed the inline boundary");
    // Drain back to empty: the spilled representation keeps behaving
    // exactly like the shadow as the route shrinks through 8 again.
    while !route.is_empty() {
        let (stop, _) = route.pop_front_stop();
        assert_eq!(stop, shadow.remove(0));
        check_against_shadow(&route, &shadow, &oracle);
    }
    // And an emptied route accepts fresh work as if newly built.
    let r = request(99, 5, 9, 1_000_000);
    let plan = linear_dp_insertion(&route, 8, &r, &oracle).expect("empty route accepts");
    route.apply_insertion(&plan, &r);
    assert_eq!(route.len(), 2);
    assert!(route.validate(8).is_ok());
}
