//! End-to-end planner properties on simulated cities:
//!
//! * Lemma 8 (pre-ordered pruning) is result-preserving: `GreedyDP`
//!   and `pruneGreedyDP` produce byte-identical event logs — only the
//!   shortest-distance query counts differ (they must *drop*).
//! * Every planner (ours and all three baselines) survives the
//!   independent audit on every scenario.

use std::sync::Arc;

use urpsm::baselines::prelude::*;
use urpsm::network::oracle::{CountingOracle, DistanceOracle};
use urpsm::prelude::*;

fn scenario(seed: u64, workers: usize, requests: usize) -> Scenario {
    ScenarioBuilder::named("prop")
        .grid_city(14, 14)
        .workers(workers)
        .requests(requests)
        .deadline_offset(8 * MINUTE_CS)
        .horizon(40 * MINUTE_CS)
        .seed(seed)
        .build()
}

fn run_counted(
    scenario: &Scenario,
    planner: &mut dyn Planner,
) -> (urpsm::simulator::prelude::SimOutcome, u64) {
    let counting: Arc<CountingOracle<Arc<dyn DistanceOracle>>> =
        Arc::new(CountingOracle::new(scenario.oracle.clone()));
    let sim = Simulation::new(
        counting.clone(),
        scenario.workers.clone(),
        scenario.requests.clone(),
        SimConfig {
            grid_cell_m: scenario.grid_cell_m,
            alpha: scenario.alpha,
            drain: true,
            threads: 0,
            classes: scenario.classes.clone(),
            ..SimConfig::default()
        },
    )
    .expect("scenario streams are sorted");
    let out = sim.run(planner);
    let queries = counting.stats().dis;
    (out, queries)
}

#[test]
fn lemma8_pruning_is_result_preserving_and_saves_queries() {
    for seed in [1u64, 7, 42, 2018] {
        let sc = scenario(seed, 12, 250);
        let (out_g, q_g) = run_counted(&sc, &mut GreedyDp::new());
        let (out_p, q_p) = run_counted(&sc, &mut PruneGreedyDp::new());
        assert_eq!(
            out_g.events, out_p.events,
            "seed {seed}: pruning changed outcomes"
        );
        assert_eq!(
            out_g.metrics.unified_cost, out_p.metrics.unified_cost,
            "seed {seed}"
        );
        assert!(
            q_p < q_g,
            "seed {seed}: pruning saved no queries ({q_p} vs {q_g})"
        );
    }
}

#[test]
fn all_planners_pass_the_audit() {
    let sc = scenario(3, 10, 200);
    let mut planners: Vec<Box<dyn Planner>> = vec![
        Box::new(TSharePlanner::new()),
        Box::new(KineticPlanner::new()),
        Box::new(BatchPlanner::new()),
        Box::new(GreedyDp::new()),
        Box::new(PruneGreedyDp::new()),
    ];
    for p in &mut planners {
        let out = urpsm::simulate(&sc, p.as_mut());
        assert!(
            out.audit_errors.is_empty(),
            "{}: {:?}",
            p.name(),
            out.audit_errors
        );
        assert_eq!(
            out.metrics.served + out.metrics.rejected,
            sc.requests.len(),
            "{}: decisions must cover every request",
            p.name()
        );
        // Exact distance accounting after the drain.
        assert_eq!(
            out.metrics.driven_distance,
            out.state.total_assigned_distance(),
            "{}",
            p.name()
        );
    }
}

#[test]
fn kinetic_never_worse_than_insertion_per_scenario_cost() {
    // Kinetic explores a superset of insertion's placements per
    // request, so with identical candidate sets and tie-breaks its
    // *per-request* delta is ≤ the DP planner's. (Global cost can
    // diverge either way after different commitments — this asserts
    // the weaker, always-true per-first-request property.)
    let sc = scenario(11, 6, 40);
    let mut kin = KineticPlanner::new();
    let mut dp = GreedyDp::new();
    let out_k = urpsm::simulate(&sc, &mut kin);
    let out_d = urpsm::simulate(&sc, &mut dp);
    let first_delta = |events: &[SimEvent]| {
        events.iter().find_map(|e| match e {
            SimEvent::Assigned { delta, .. } => Some(*delta),
            SimEvent::Rejected { .. } => Some(u64::MAX),
            _ => None,
        })
    };
    let (dk, dd) = (first_delta(&out_k.events), first_delta(&out_d.events));
    assert!(dk <= dd, "kinetic first delta {dk:?} > insertion {dd:?}");
}

#[test]
fn strict_economics_never_increases_unified_cost_much() {
    // Extension sanity: with strict economics the planner refuses
    // service that costs more than the penalty, so the realized unified
    // cost cannot exceed the lax planner's by more than rounding.
    let sc = scenario(5, 8, 200);
    let mut lax = PruneGreedyDp::new();
    let mut strict = PruneGreedyDp::from_config(PlannerConfig {
        alpha: 1,
        strict_economics: true,
        ..PlannerConfig::default()
    });
    let out_lax = urpsm::simulate(&sc, &mut lax);
    let out_strict = urpsm::simulate(&sc, &mut strict);
    assert!(out_strict.audit_errors.is_empty());
    // Strict rejects at least as many requests.
    assert!(out_strict.metrics.rejected >= out_lax.metrics.rejected);
}
