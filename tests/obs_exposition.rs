//! End-to-end check of the observability plane (DESIGN.md §11): run a
//! real scenario through the planner, the sharded dispatch plane and a
//! WAL-backed ingest server with the runtime gate open, render the
//! Prometheus-text exposition and feed it back through the format
//! checker.
//!
//! The test is built in both feature states. Without `--features obs`
//! the instrumentation is compiled out of every layer, so the
//! exposition must still render, parse and name every family — with
//! all-zero values. With the feature on (the CI `obs-gate` job) the
//! run must actually show up: planner requests, static-cache traffic,
//! ingest ticks, WAL appends and flight-recorder records all nonzero.

use urpsm::obs;
use urpsm::prelude::*;
use urpsm::server::server::{Backend, IngestServer, ServerConfig, WalConfig};

#[test]
fn exposition_parses_and_covers_the_run() {
    obs::set_enabled(true);

    // Planner + oracle traffic through the plain service.
    let scenario = ScenarioBuilder::named("obs-exposition")
        .grid_city(6, 6)
        .workers(3)
        .requests(24)
        .cancel_rate(0.1)
        .seed(11)
        .build();
    let mut service = urpsm::service(&scenario, Box::new(PruneGreedyDp::new()));
    for event in scenario.event_stream() {
        service.submit(event);
    }
    let outcome = service.drain();
    assert!(
        outcome.audit_errors.is_empty(),
        "{:?}",
        outcome.audit_errors
    );

    // Shard + handoff traffic through the dispatch plane.
    let mut sharded = urpsm::sharded(&scenario, 2, |_| Box::new(PruneGreedyDp::new()));
    for event in scenario.event_stream() {
        sharded.submit(event);
    }
    let sharded_out = sharded.drain();
    assert!(
        sharded_out.audit_errors.is_empty(),
        "{:?}",
        sharded_out.audit_errors
    );

    // Ingest + WAL traffic through a durable server.
    let dir = std::env::temp_dir().join(format!("urpsm-obs-expo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let backend = Backend::single(urpsm::service(&scenario, Box::new(PruneGreedyDp::new())));
    let server = IngestServer::new(
        backend,
        ServerConfig {
            wal: Some(WalConfig::new(dir.clone())),
            ..ServerConfig::default()
        },
    )
    .expect("open server");
    let server_out = server.run(scenario.event_stream()).expect("run server");
    assert!(server_out.audit_errors.is_empty());
    let _ = std::fs::remove_dir_all(&dir);

    // The exposition renders, parses, and names every family the
    // acceptance criteria call out.
    let text = obs::render_prometheus(obs::registry());
    let samples = obs::check_exposition(&text).expect("exposition must parse");
    assert!(samples > 40, "only {samples} samples rendered");
    for family in [
        "urpsm_plan_latency_ns",
        "urpsm_plan_requests_total",
        "urpsm_dis_cache_hits_total",
        "urpsm_dis_cache_misses_total",
        "urpsm_td_dis_hits_total",
        "urpsm_ingest_ticks_total",
        "urpsm_ingest_backlog",
        "urpsm_ingest_shed_total",
        "urpsm_wal_flush_ns",
        "urpsm_shards_live",
    ] {
        assert!(text.contains(family), "missing family {family}");
    }

    // With the instrumentation compiled in, the run is visible.
    #[cfg(feature = "obs")]
    {
        let snap = obs::registry().snapshot();
        assert!(snap.plan_requests > 0, "no planner traffic recorded");
        assert!(
            snap.dis_cache_hits + snap.dis_cache_misses > 0,
            "no oracle cache traffic recorded"
        );
        assert!(snap.ingest_ticks > 0, "no ingest ticks recorded");
        assert!(snap.wal_appends > 0, "no WAL appends recorded");
        assert!(snap.wal_flushes > 0, "no WAL flushes recorded");
        assert!(snap.shards_live >= 2, "sharded run not reflected");
        assert!(snap.service_events > 0, "no service events recorded");
        assert!(snap.trace_recorded > 0, "flight recorder stayed empty");
        assert!(
            text.contains("urpsm_shard_sheds_total{shard=\"0\"}"),
            "per-shard series missing"
        );

        // The flight recorder dump is valid JSON-ish and non-empty.
        let dump = obs::registry().ring.dump_json();
        assert!(dump.starts_with('[') && dump.ends_with(']'));
        assert!(dump.contains("\"kind\""));
    }

    // Without the feature, zero overhead means zero readings.
    #[cfg(not(feature = "obs"))]
    {
        let snap = obs::registry().snapshot();
        assert_eq!(snap.plan_requests, 0);
        assert_eq!(snap.ingest_ticks, 0);
        assert_eq!(snap.trace_recorded, 0);
    }
}
