//! Whole-system invariants on realistic scenarios: cost accounting is
//! exact, events reconstruct the unified cost, and both city presets
//! drive every planner cleanly.

use std::collections::HashMap;

use urpsm::baselines::prelude::*;
use urpsm::prelude::*;

fn small_city(seed: u64) -> Scenario {
    ScenarioBuilder::named("inv")
        .grid_city(12, 12)
        .workers(8)
        .requests(180)
        .horizon(45 * MINUTE_CS)
        .seed(seed)
        .build()
}

/// Recompute the unified cost purely from the event log + request set
/// and compare with the platform's accounting.
#[test]
fn unified_cost_reconstructs_from_events() {
    let sc = small_city(17);
    let mut planner = PruneGreedyDp::new();
    let out = urpsm::simulate(&sc, &mut planner);
    assert!(out.audit_errors.is_empty());

    let by_id: HashMap<RequestId, &Request> = sc.requests.iter().map(|r| (r.id, r)).collect();
    let mut penalty = 0u64;
    let mut delta_sum = 0u64;
    for ev in &out.events {
        match ev {
            SimEvent::Rejected { r, .. } => penalty += by_id[r].penalty,
            SimEvent::Assigned { delta, .. } => delta_sum += delta,
            _ => {}
        }
    }
    assert_eq!(out.metrics.unified_cost.total_penalty, penalty);
    assert_eq!(out.metrics.unified_cost.total_distance, delta_sum);
    assert_eq!(
        out.metrics.unified_cost.value(),
        sc.alpha * delta_sum + penalty
    );
}

/// Served requests ride within their deadline; their ride time is at
/// least the direct shortest time (no teleporting).
#[test]
fn ride_times_are_physical() {
    let sc = small_city(23);
    let mut planner = GreedyDp::new();
    let out = urpsm::simulate(&sc, &mut planner);
    assert!(out.audit_errors.is_empty());

    let by_id: HashMap<RequestId, &Request> = sc.requests.iter().map(|r| (r.id, r)).collect();
    let mut pickups: HashMap<RequestId, Time> = HashMap::new();
    let mut count = 0;
    for ev in &out.events {
        match ev {
            SimEvent::Pickup { t, r, .. } => {
                pickups.insert(*r, *t);
            }
            SimEvent::Delivery { t, r, .. } => {
                let req = by_id[r];
                let picked = pickups[r];
                let direct = sc.oracle.dis(req.origin, req.destination);
                assert!(*t >= picked + direct, "{r}: rode faster than shortest path");
                assert!(*t <= req.deadline, "{r}: late delivery");
                assert!(picked >= req.release, "{r}: picked before release");
                count += 1;
            }
            _ => {}
        }
    }
    assert_eq!(count, out.metrics.served, "every served request completed");
}

/// Both city presets run every planner cleanly (reduced sizes).
#[test]
fn city_presets_run_all_planners() {
    let cities = [
        urpsm::workloads::scenario::nyc_like(4)
            .grid_city(16, 16)
            .workers(15)
            .requests(150)
            .build(),
        urpsm::workloads::scenario::chengdu_like(4)
            .ring_city(8, 16)
            .workers(10)
            .requests(120)
            .build(),
    ];
    for sc in &cities {
        let mut planners: Vec<Box<dyn Planner>> = vec![
            Box::new(TSharePlanner::new()),
            Box::new(KineticPlanner::new()),
            Box::new(BatchPlanner::new()),
            Box::new(PruneGreedyDp::new()),
        ];
        for p in &mut planners {
            let out = urpsm::simulate(sc, p.as_mut());
            assert!(
                out.audit_errors.is_empty(),
                "{} on {}: {:?}",
                p.name(),
                sc.name,
                out.audit_errors
            );
        }
    }
}

/// More workers ⇒ unified cost can only improve (weakly) for the same
/// stream — the monotonicity behind Fig. 3's downward curves.
#[test]
fn more_workers_weakly_helps() {
    // Use identical request streams: build the big scenario, then
    // truncate its worker list for the small run.
    let big = ScenarioBuilder::named("mono")
        .grid_city(12, 12)
        .workers(16)
        .requests(200)
        .horizon(30 * MINUTE_CS)
        .seed(77)
        .build();
    let mut small_workers = big.workers.clone();
    small_workers.truncate(4);

    let run = |workers: Vec<Worker>| {
        let sim = Simulation::new(
            big.oracle.clone(),
            workers,
            big.requests.clone(),
            SimConfig::default(),
        )
        .expect("scenario streams are sorted");
        sim.run(&mut PruneGreedyDp::new()).metrics
    };
    let m_small = run(small_workers);
    let m_big = run(big.workers.clone());
    // Not a theorem for greedy algorithms, but overwhelmingly true at
    // this density; treat a large regression as a bug signal.
    assert!(
        m_big.unified_cost.value() <= m_small.unified_cost.value() * 11 / 10,
        "16 workers much worse than 4: {} vs {}",
        m_big.unified_cost.value(),
        m_small.unified_cost.value()
    );
    assert!(m_big.served >= m_small.served);
}
