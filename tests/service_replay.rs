//! The event-driven `MobilityService` against the legacy batch path,
//! plus lifecycle invariants under cancellations and fleet churn.
//!
//! * **Replay equivalence** — for cancellation-free streams, feeding a
//!   scenario's requests one `PlatformEvent` at a time must reproduce
//!   the batch `Simulation` run *byte for byte*: same event log, same
//!   served/rejected counts, same unified cost, same driven distance
//!   (wall-clock planning time is the one legitimately nondeterministic
//!   field).
//! * **Lifecycle invariants** (property-tested) — a cancelled request
//!   is never delivered, every arrival gets exactly one terminal fate,
//!   the independent audit stays clean under worker churn, and the
//!   driven-equals-planned accounting survives route surgery.

use proptest::prelude::*;

use urpsm::baselines::prelude::*;
use urpsm::prelude::*;

fn scenario(seed: u64, cancel_rate: f64, departures: usize, arrivals: usize) -> Scenario {
    ScenarioBuilder::named("replay")
        .grid_city(10, 10)
        .workers(6)
        .requests(140)
        .horizon(35 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .cancel_rate(cancel_rate)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(departures, arrivals)
        .seed(seed)
        .build()
}

/// Zeroes the wall-clock field so metrics compare structurally.
fn normalized(mut m: SimMetrics) -> SimMetrics {
    m.planning_time = std::time::Duration::ZERO;
    m
}

fn run_streamed(sc: &Scenario, planner: Box<dyn Planner + '_>) -> SimOutcome {
    let mut service = urpsm::service(sc, planner);
    for event in sc.event_stream() {
        service.submit(event);
    }
    service.drain()
}

#[test]
fn event_stream_replay_matches_legacy_engine() {
    for seed in [3u64, 17, 2018] {
        let sc = scenario(seed, 0.0, 0, 0);

        // The paper's planner and the batch baseline (which exercises
        // the wake-up/epoch machinery) must both replay identically.
        let mut legacy_dp = PruneGreedyDp::new();
        let legacy = urpsm::simulate(&sc, &mut legacy_dp);
        let streamed = run_streamed(&sc, Box::new(PruneGreedyDp::new()));
        assert_eq!(legacy.events, streamed.events, "seed {seed}: event log");
        assert_eq!(
            normalized(legacy.metrics),
            normalized(streamed.metrics),
            "seed {seed}: metrics"
        );
        assert!(streamed.audit_errors.is_empty(), "seed {seed}");

        let mut legacy_batch = BatchPlanner::new();
        let legacy = urpsm::simulate(&sc, &mut legacy_batch);
        let streamed = run_streamed(&sc, Box::new(BatchPlanner::new()));
        assert_eq!(
            legacy.events, streamed.events,
            "seed {seed}: batch event log"
        );
        assert_eq!(
            normalized(legacy.metrics),
            normalized(streamed.metrics),
            "seed {seed}: batch metrics"
        );
    }
}

#[test]
fn borrowed_planner_keeps_statistics_readable() {
    // The `impl Planner for &mut P` adapter: lend the planner to the
    // service, read its counters afterwards.
    let sc = scenario(5, 0.0, 0, 0);
    let mut planner = KineticPlanner::new();
    let outcome = run_streamed(&sc, Box::new(&mut planner));
    assert!(outcome.audit_errors.is_empty());
    // The planner is still ours: its overflow statistic is readable.
    let _ = planner.overflow_count();
}

#[test]
fn mixed_trace_with_all_planners_stays_clean() {
    let sc = scenario(2018, 0.15, 1, 1);
    assert!(sc.cancellations.len() >= 2);
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(PruneGreedyDp::new()),
        Box::new(GreedyDp::new()),
        Box::new(TSharePlanner::new()),
        Box::new(KineticPlanner::new()),
        Box::new(BatchPlanner::new()),
    ];
    for planner in planners {
        let name = planner.name();
        let out = run_streamed(&sc, planner);
        assert!(
            out.audit_errors.is_empty(),
            "{name}: {:?}",
            out.audit_errors
        );
        assert_eq!(
            out.metrics.served + out.metrics.rejected + out.metrics.cancelled,
            out.metrics.requests,
            "{name}: every request needs a terminal fate"
        );
        assert_eq!(
            out.metrics.driven_distance,
            out.state.total_assigned_distance(),
            "{name}: driven must equal planned after route surgery"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cancelled requests never end up served, and the audit stays
    /// clean across random cancellation/churn mixes and both departure
    /// policies.
    #[test]
    fn lifecycle_invariants_hold(
        seed in 0u64..1_000,
        cancel_pct in 0u32..30,
        departures in 0usize..3,
        arrivals in 0usize..3,
        drain_policy in any::<bool>(),
    ) {
        let sc = ScenarioBuilder::named("prop")
            .grid_city(8, 8)
            .workers(5)
            .requests(80)
            .horizon(25 * MINUTE_CS)
            .cancel_rate(f64::from(cancel_pct) / 100.0)
            .cancel_delay(2 * MINUTE_CS)
            .fleet_churn(departures, arrivals)
            .departure_policy(if drain_policy {
                ReassignPolicy::Drain
            } else {
                ReassignPolicy::Reassign
            })
            .seed(seed)
            .build();
        let out = run_streamed(&sc, Box::new(PruneGreedyDp::new()));

        prop_assert!(out.audit_errors.is_empty(), "audit: {:?}", out.audit_errors);

        // A cancellation is terminal: no delivery may follow, and the
        // request must not be counted served.
        let cancelled: Vec<RequestId> = out
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Cancelled { r, .. } => Some(*r),
                _ => None,
            })
            .collect();
        prop_assert_eq!(cancelled.len(), out.metrics.cancelled);
        for r in &cancelled {
            prop_assert!(
                !out.events.iter().any(|e| matches!(e,
                    SimEvent::Delivery { r: dr, .. } if dr == r)),
                "{r} cancelled yet delivered"
            );
            prop_assert!(out.state.cancelled().contains(r));
        }

        // Terminal-fate accounting and exact distance bookkeeping.
        prop_assert_eq!(
            out.metrics.served + out.metrics.rejected + out.metrics.cancelled,
            out.metrics.requests
        );
        prop_assert_eq!(
            out.metrics.driven_distance,
            out.state.total_assigned_distance()
        );
    }
}
