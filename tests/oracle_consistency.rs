//! Cross-oracle consistency on generated cities: hub labels, Dijkstra
//! and the dense matrix must agree exactly; the LRU decorator must be
//! transparent; Euclidean bounds must hold everywhere.

use std::sync::Arc;

use urpsm::network::cache::LruCachedOracle;
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::oracle::{CountingOracle, DijkstraOracle, DistanceOracle, HubLabelOracle};
use urpsm::network::VertexId;
use urpsm::workloads::network_gen::{grid_city, ring_radial_city};

#[test]
fn hub_labels_match_dijkstra_and_matrix_on_grid() {
    let g = Arc::new(grid_city(9, 9, 350.0, 5));
    let hub = HubLabelOracle::build(g.clone());
    let dij = DijkstraOracle::new(g.clone());
    let mat = MatrixOracle::from_network(&g);
    for u in g.vertices() {
        for v in g.vertices() {
            let d = dij.dis(u, v);
            assert_eq!(hub.dis(u, v), d, "hub vs dijkstra at ({u},{v})");
            assert_eq!(mat.dis(u, v), d, "matrix vs dijkstra at ({u},{v})");
        }
    }
}

#[test]
fn hub_labels_match_dijkstra_on_ring_city() {
    let g = Arc::new(ring_radial_city(6, 14, 500.0));
    let hub = HubLabelOracle::build(g.clone());
    let dij = DijkstraOracle::new(g.clone());
    for u in g.vertices().step_by(3) {
        for v in g.vertices().step_by(5) {
            assert_eq!(hub.dis(u, v), dij.dis(u, v), "({u},{v})");
        }
    }
}

#[test]
fn euclidean_bound_holds_on_generated_cities() {
    for g in [grid_city(10, 10, 420.0, 9), ring_radial_city(5, 12, 700.0)] {
        let g = Arc::new(g);
        let hub = HubLabelOracle::build(g.clone());
        for u in g.vertices().step_by(7) {
            for v in g.vertices().step_by(3) {
                assert!(hub.euc(u, v) <= hub.dis(u, v), "euc > dis at ({u},{v})");
            }
        }
    }
}

#[test]
fn triangle_inequality_on_sampled_triples() {
    let g = Arc::new(grid_city(8, 8, 400.0, 2));
    let hub = HubLabelOracle::build(g.clone());
    let n = g.num_vertices() as u32;
    for a in (0..n).step_by(5) {
        for b in (0..n).step_by(7) {
            for c in (0..n).step_by(11) {
                let (a, b, c) = (VertexId(a), VertexId(b), VertexId(c));
                assert!(
                    hub.dis(a, c) <= hub.dis(a, b) + hub.dis(b, c),
                    "triangle violated at ({a},{b},{c})"
                );
            }
        }
    }
}

#[test]
fn lru_decorator_is_transparent_and_reduces_backend_traffic() {
    let g = Arc::new(grid_city(7, 7, 300.0, 3));
    let counting = Arc::new(CountingOracle::new(DijkstraOracle::new(g.clone())));
    let cached = LruCachedOracle::new(counting.clone(), 4_096, 256);
    counting.reset(); // drop the debug-build symmetry probes
    let reference = DijkstraOracle::new(g.clone());

    // Query a repeated pattern twice.
    let queries: Vec<(u32, u32)> = (0..40)
        .flat_map(|i| [(i, (i * 3) % 49), ((i * 5) % 49, i)])
        .collect();
    for &(u, v) in queries.iter().chain(queries.iter()) {
        let (u, v) = (VertexId(u), VertexId(v));
        assert_eq!(cached.dis(u, v), reference.dis(u, v));
    }
    let backend = counting.stats().dis;
    assert!(
        backend <= queries.len() as u64,
        "second pass should be all cache hits: {backend} backend queries"
    );
    let (hits, misses) = cached.dis_hit_stats();
    assert!(
        hits >= queries.len() as u64 / 2,
        "hits {hits} misses {misses}"
    );

    // Paths: cached result equals a fresh one, forwards and reversed.
    let p1 = cached.shortest_path(VertexId(0), VertexId(48)).unwrap();
    let p2 = cached.shortest_path(VertexId(48), VertexId(0)).unwrap();
    let mut p2r = p2;
    p2r.reverse();
    assert_eq!(p1.first(), p2r.first());
    assert_eq!(p1.last(), p2r.last());
    let d: u64 = p1.windows(2).map(|w| cached.dis(w[0], w[1])).sum();
    assert_eq!(
        d,
        cached.dis(VertexId(0), VertexId(48)),
        "path length = dis"
    );
}

#[test]
fn shortest_paths_are_edge_walks() {
    // Every consecutive path pair must be an actual edge of the graph.
    let g = Arc::new(grid_city(8, 8, 400.0, 13));
    let hub = HubLabelOracle::build(g.clone());
    let p = hub.shortest_path(VertexId(0), VertexId(63)).unwrap();
    for w in p.windows(2) {
        assert!(
            g.neighbors(w[0]).any(|(v, _)| v == w[1]),
            "path hop {}->{} is not an edge",
            w[0],
            w[1]
        );
    }
}
