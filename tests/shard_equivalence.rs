//! The geo-sharded dispatch plane against the single `MobilityService`.
//!
//! * **K = 1 is the identity** — a one-shard `ShardedService` replaying
//!   a scenario's full event stream (arrivals, cancellations, fleet
//!   churn) must be *byte-identical* to a plain `MobilityService` fed
//!   the same stream: same event log, same metrics, same committed
//!   distance. Single-shard routing passes every reply through
//!   verbatim, so any divergence is a routing or translation bug.
//! * **K ∈ {2, 4, 8} is audit-clean** — every shard's independent
//!   audit must hold (feasibility, invariability, exact
//!   driven == planned economics) on cancel/churn/multi-region
//!   streams under both boundary policies. Solution *quality* may
//!   legitimately differ from K = 1 (sharding trades optimality for
//!   locality); the delta is recorded in the test output instead of
//!   silently degrading.

use urpsm::baselines::prelude::*;
use urpsm::prelude::*;

fn scenario(seed: u64, cancel_rate: f64, churn: (usize, usize), inter_region: f64) -> Scenario {
    ScenarioBuilder::named("shard-eq")
        .grid_city(10, 10)
        .workers(8)
        .requests(140)
        .horizon(35 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .hotspots(4)
        .inter_region_trips(inter_region)
        .cancel_rate(cancel_rate)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(churn.0, churn.1)
        .seed(seed)
        .build()
}

/// The trace battery: plain, cancellation-heavy, churny, and the
/// kitchen sink with cross-region demand.
fn battery() -> Vec<Scenario> {
    vec![
        scenario(3, 0.0, (0, 0), 0.0),
        scenario(17, 0.2, (0, 0), 0.0),
        scenario(2018, 0.0, (2, 2), 0.0),
        scenario(71, 0.15, (1, 2), 0.4),
    ]
}

/// Zeroes the wall-clock field so metrics compare structurally.
fn normalized(mut m: SimMetrics) -> SimMetrics {
    m.planning_time = std::time::Duration::ZERO;
    m
}

fn run_plain(sc: &Scenario, planner: Box<dyn Planner + '_>) -> SimOutcome {
    let mut service = urpsm::service(sc, planner);
    for event in sc.event_stream() {
        service.submit(event);
    }
    service.drain()
}

fn run_sharded(sc: &Scenario, shards: usize, boundary: BoundaryPolicy) -> ShardedOutcome {
    let mut service = ShardedService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        |_| Box::new(PruneGreedyDp::new()),
        ShardConfig {
            shards,
            boundary,
            threads: 1,
            sim: SimConfig {
                grid_cell_m: sc.grid_cell_m,
                alpha: sc.alpha,
                drain: true,
                threads: 0,
                classes: sc.classes.clone(),
                ..SimConfig::default()
            },
        },
        sc.event_stream().first().map_or(0, PlatformEvent::time),
    );
    for event in sc.event_stream() {
        service.submit(event);
    }
    service.drain()
}

#[test]
fn one_shard_is_byte_identical_to_the_plain_service() {
    for (i, sc) in battery().iter().enumerate() {
        for boundary in [BoundaryPolicy::Strict, BoundaryPolicy::Borrow { probe: 3 }] {
            let plain = run_plain(sc, Box::new(PruneGreedyDp::new()));
            let sharded = run_sharded(sc, 1, boundary);
            assert_eq!(
                plain.events, sharded.events,
                "trace {i} ({boundary:?}): event log"
            );
            assert_eq!(
                normalized(plain.metrics),
                normalized(sharded.metrics.clone()),
                "trace {i} ({boundary:?}): metrics"
            );
            assert_eq!(
                plain.state.total_assigned_distance(),
                sharded.total_assigned_distance(),
                "trace {i} ({boundary:?}): committed distance"
            );
            assert_eq!(sharded.handoffs, 0, "one shard has no seams");
            assert!(sharded.audit_errors.is_empty(), "trace {i}");
        }
    }
}

#[test]
fn one_shard_matches_the_batch_planner_epochs_too() {
    // The batch planner exercises the wake-up/epoch machinery through
    // the dispatch plane (routing must not skip planner wakeups).
    let sc = scenario(17, 0.2, (0, 0), 0.0);
    let plain = run_plain(&sc, Box::new(BatchPlanner::new()));
    let mut service = ShardedService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        |_| Box::new(BatchPlanner::new()),
        ShardConfig {
            shards: 1,
            sim: SimConfig {
                grid_cell_m: sc.grid_cell_m,
                alpha: sc.alpha,
                drain: true,
                threads: 0,
                classes: sc.classes.clone(),
                ..SimConfig::default()
            },
            ..ShardConfig::default()
        },
        sc.event_stream().first().map_or(0, PlatformEvent::time),
    );
    for event in sc.event_stream() {
        service.submit(event);
    }
    let sharded = service.drain();
    assert_eq!(plain.events, sharded.events);
    assert_eq!(normalized(plain.metrics), normalized(sharded.metrics));
}

#[test]
fn multi_shard_runs_are_audit_clean_and_quality_is_recorded() {
    for (i, sc) in battery().iter().enumerate() {
        let baseline = run_plain(sc, Box::new(PruneGreedyDp::new()));
        for shards in [2usize, 4, 8] {
            let out = run_sharded(sc, shards, BoundaryPolicy::Borrow { probe: 3 });
            assert_eq!(
                out.audit_errors,
                Vec::<String>::new(),
                "trace {i}, K={shards}"
            );
            // Economics stay exact at every K: what was driven is
            // exactly what was planned, summed over shards.
            assert_eq!(
                out.metrics.driven_distance,
                out.total_assigned_distance(),
                "trace {i}, K={shards}: driven == planned"
            );
            // Every request gets exactly one terminal fate somewhere.
            assert_eq!(
                out.metrics.served + out.metrics.rejected + out.metrics.cancelled,
                out.metrics.requests,
                "trace {i}, K={shards}: terminal fates"
            );
            assert_eq!(out.metrics.requests, sc.requests.len());
            // Per-shard handoff ledgers balance the global count.
            let inflow: usize = out.shards.iter().map(|s| s.handoffs_in).sum();
            let outflow: usize = out.shards.iter().map(|s| s.handoffs_out).sum();
            assert_eq!(inflow, out.handoffs);
            assert_eq!(outflow, out.handoffs);
            // Quality is a recorded trade-off, not a silent one.
            println!(
                "trace {i} K={shards}: served {}/{} (K=1: {}), UC {} (K=1: {}), handoffs {}",
                out.metrics.served,
                out.metrics.requests,
                baseline.metrics.served,
                out.metrics.unified_cost.value(),
                baseline.metrics.unified_cost.value(),
                out.handoffs
            );
        }
    }
}

#[test]
fn strict_boundaries_are_audit_clean_and_never_hand_off() {
    let sc = scenario(71, 0.15, (1, 2), 0.4);
    for shards in [2usize, 4, 8] {
        let out = run_sharded(&sc, shards, BoundaryPolicy::Strict);
        assert!(out.audit_errors.is_empty(), "K={shards}");
        assert_eq!(out.handoffs, 0);
        assert_eq!(
            out.metrics.driven_distance,
            out.total_assigned_distance(),
            "K={shards}"
        );
        assert_eq!(
            out.metrics.served + out.metrics.rejected + out.metrics.cancelled,
            out.metrics.requests
        );
    }
}

#[test]
fn borrowing_recovers_quality_where_strict_rejects() {
    // The case the Borrow policy exists for: the whole fleet starts in
    // one corner region while demand is city-wide, so under strict
    // sharding every shard but one begins unservable. Borrowing must
    // strictly beat strict sharding here by migrating idle workers
    // toward the stranded demand.
    let mut sc = ScenarioBuilder::named("seam")
        .grid_city(12, 12)
        .workers(6)
        .requests(120)
        .horizon(40 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .hotspots(4)
        .inter_region_trips(0.5)
        .seed(5)
        .build();
    // Park every worker on the bottom-left corner block (vertices
    // 0..6 of the row-major grid): shard 0 for every K tested.
    for (i, w) in sc.workers.iter_mut().enumerate() {
        w.origin = VertexId(i as u32);
    }
    for shards in [2usize, 4] {
        let strict = run_sharded(&sc, shards, BoundaryPolicy::Strict);
        let borrow = run_sharded(&sc, shards, BoundaryPolicy::Borrow { probe: 3 });
        assert!(strict.audit_errors.is_empty());
        assert!(borrow.audit_errors.is_empty());
        assert!(
            borrow.metrics.served > strict.metrics.served,
            "K={shards}: borrow served {} !> strict {}",
            borrow.metrics.served,
            strict.metrics.served
        );
        assert!(borrow.handoffs > 0, "K={shards}: no worker crossed a seam");
        println!(
            "K={shards}: strict served {}, borrow served {} ({} handoffs)",
            strict.metrics.served, borrow.metrics.served, borrow.handoffs
        );
    }
}

#[test]
fn env_default_shard_count_is_audit_clean() {
    // `urpsm::sharded(_, 0, _)` resolves K from URPSM_SHARDS (CI runs
    // the suite at K = 4); at any K the run must be audit-clean with
    // exact economics.
    let sc = scenario(13, 0.1, (1, 1), 0.3);
    let mut service = urpsm::sharded(&sc, 0, |_| Box::new(PruneGreedyDp::new()));
    let k = service.num_shards();
    assert_eq!(k, shards_from_env());
    for event in sc.event_stream() {
        service.submit(event);
    }
    let out = service.drain();
    assert!(out.audit_errors.is_empty(), "K={k}: {:?}", out.audit_errors);
    assert_eq!(out.metrics.driven_distance, out.total_assigned_distance());
    assert_eq!(
        out.metrics.served + out.metrics.rejected + out.metrics.cancelled,
        out.metrics.requests
    );
}
