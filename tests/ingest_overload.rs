//! Admission control under overload (DESIGN.md §9): when a shard
//! falls behind its tick budget, queue depth stays bounded, excess
//! arrivals are rejected with an explicit `Overloaded` reply — and the
//! whole overload episode is deterministic: the same event sequence
//! sheds the same requests no matter how many producer threads fed it.

use urpsm::prelude::*;

fn scenario(seed: u64) -> Scenario {
    // A demand spike: many requests packed into a short horizon, so a
    // small tick budget genuinely falls behind.
    ScenarioBuilder::named("overload")
        .grid_city(10, 10)
        .workers(8)
        .requests(160)
        .horizon(10 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .seed(seed)
        .build()
}

fn overloaded_config() -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig {
            queue_limit: 6,
            tick_budget: 9,
        },
        ..ServerConfig::default()
    }
}

fn run_with_producers(sc: &Scenario, producers: usize) -> (ServerOutcome, Vec<TickReport>) {
    let mut server = IngestServer::new(
        Backend::single(urpsm::service(sc, Box::new(PruneGreedyDp::new()))),
        overloaded_config(),
    )
    .expect("open server");
    // Pre-stamped partitioned feed: thread t sends every
    // (i % producers == t)-th event under its stream index, so the
    // drained order is independent of the thread count.
    let events = std::sync::Arc::new(sc.event_stream());
    let mut threads = Vec::new();
    for t in 0..producers {
        let tx = server.handle();
        let events = std::sync::Arc::clone(&events);
        threads.push(std::thread::spawn(move || {
            for (i, ev) in events.iter().enumerate() {
                if i % producers == t {
                    tx.send_stamped(i as u64, *ev).expect("server alive");
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("producer");
    }
    let mut reports = Vec::new();
    while let Some(r) = server.step().expect("tick") {
        reports.push(r);
    }
    (server.finish().expect("finish"), reports)
}

#[test]
fn overload_sheds_explicitly_and_keeps_queue_depth_bounded() {
    let sc = scenario(21);
    let (outcome, reports) = run_with_producers(&sc, 1);

    // The spike really overloads the server…
    assert!(
        outcome.sheds > 0,
        "budget 9/tick must fall behind the spike"
    );
    // …but the queue bound holds: this is an arrival-only stream, so
    // the backlog can never exceed the queue limit.
    assert!(
        outcome.peak_backlog <= 6,
        "peak backlog {} exceeded the queue limit",
        outcome.peak_backlog
    );
    for r in &reports {
        assert!(r.backlog <= 6, "tick {}: backlog {}", r.until, r.backlog);
    }

    // Every shed is an explicit reply naming the rejected request, and
    // a shed request never reached the platform.
    let shed: Vec<RequestId> = outcome
        .replies
        .iter()
        .filter_map(|r| match r {
            IngestReply::Overloaded { request, .. } => Some(*request),
            IngestReply::Service(_) => None,
        })
        .collect();
    assert_eq!(shed.len(), outcome.sheds);
    for reply in &outcome.replies {
        if let IngestReply::Service(SimEvent::Assigned { r, .. } | SimEvent::Rejected { r, .. }) =
            reply
        {
            assert!(
                !shed.contains(r),
                "request {r:?} was shed yet reached the planner"
            );
        }
    }

    // Conservation: every request got exactly one of the three fates.
    assert_eq!(
        outcome.metrics.served + outcome.metrics.rejected + outcome.sheds,
        sc.requests.len(),
        "served + rejected + shed must cover the stream"
    );
    assert!(
        outcome.audit_errors.is_empty(),
        "{:?}",
        outcome.audit_errors
    );
}

#[test]
fn overload_is_deterministic_across_producer_counts() {
    let sc = scenario(22);
    let (one, _) = run_with_producers(&sc, 1);
    let (four, _) = run_with_producers(&sc, 4);
    assert!(one.sheds > 0, "the episode must actually shed");
    assert_eq!(one.replies, four.replies, "reply log");
    assert_eq!(one.events, four.events, "event log");
    assert_eq!(one.sheds, four.sheds);
    assert_eq!(one.peak_backlog, four.peak_backlog);
    assert_eq!(
        one.metrics.unified_cost, four.metrics.unified_cost,
        "unified cost"
    );
}

#[test]
fn unbounded_admission_never_sheds() {
    let sc = scenario(23);
    let server = IngestServer::new(
        Backend::single(urpsm::service(&sc, Box::new(PruneGreedyDp::new()))),
        ServerConfig::default(),
    )
    .expect("open server");
    let outcome = server.run(sc.event_stream()).expect("run");
    assert_eq!(outcome.sheds, 0);
    assert_eq!(outcome.peak_backlog, 0);
    assert!(outcome.audit_errors.is_empty());
}
