//! The TD-oracle differential suite (DESIGN.md §10), pinned byte for
//! byte:
//!
//! * with a **flat** profile, routing committed legs through the
//!   time-dependent oracle (`SimConfig::td_oracle`) is the identity —
//!   event logs and costs equal the overlay-provider run *and* the
//!   no-profile run at every planner width (1/4) and shard count
//!   (1/4), because a flat TD query collapses to the static
//!   hub-label/Dijkstra distance, bit for bit;
//! * with the **two-peak** profile the TD oracle stays audit-clean and
//!   deterministic across threads, while actually rerouting (TD legs
//!   never exceed the naive stretched overlay, and on a detour fixture
//!   they beat it strictly).

use std::sync::Arc;

use urpsm::prelude::*;
use urpsm_core::event::PlatformEvent;

fn run_with(
    sc: &Scenario,
    planner: Box<dyn Planner>,
    congestion: Option<Arc<CongestionProfile>>,
    td_oracle: bool,
) -> SimOutcome {
    let stream = sc.event_stream();
    let start = stream.first().map_or(0, PlatformEvent::time);
    let mut service = MobilityService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        planner,
        SimConfig {
            grid_cell_m: sc.grid_cell_m,
            alpha: sc.alpha,
            drain: true,
            threads: 0,
            congestion,
            td_oracle,
            classes: sc.classes.clone(),
        },
        start,
    );
    for event in stream {
        service.submit(event);
    }
    service.drain()
}

fn run(
    sc: &Scenario,
    threads: usize,
    congestion: Option<Arc<CongestionProfile>>,
    td_oracle: bool,
) -> SimOutcome {
    let cfg = PlannerConfig {
        alpha: sc.alpha,
        strict_economics: false,
        threads,
    };
    run_with(
        sc,
        Box::new(PruneGreedyDp::from_config(cfg)),
        congestion,
        td_oracle,
    )
}

fn run_sharded(
    sc: &Scenario,
    shards: usize,
    congestion: Option<Arc<CongestionProfile>>,
    td_oracle: bool,
) -> ShardedOutcome {
    let stream = sc.event_stream();
    let start = stream.first().map_or(0, PlatformEvent::time);
    let mut service = ShardedService::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        |_| Box::new(PruneGreedyDp::new()) as Box<dyn Planner>,
        ShardConfig {
            shards,
            threads: 1,
            sim: SimConfig {
                grid_cell_m: sc.grid_cell_m,
                alpha: sc.alpha,
                drain: true,
                threads: 0,
                congestion,
                td_oracle,
                classes: sc.classes.clone(),
            },
            ..ShardConfig::default()
        },
        start,
    );
    for event in stream {
        service.submit(event);
    }
    service.drain()
}

/// Same churny shape as the congestion suite: cancellations and fleet
/// churn interleave route surgery with planning.
fn churny_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::named("td-eq")
        .grid_city(10, 10)
        .workers(6)
        .requests(140)
        .horizon(35 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .cancel_rate(0.15)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(2, 2)
        .seed(seed)
        .build()
}

fn flat() -> Option<Arc<CongestionProfile>> {
    Some(Arc::new(CongestionProfile::flat()))
}

/// The scenario oracle must expose its backing graph, or `td_oracle`
/// would silently fall back to the overlay provider and this whole
/// suite would pin nothing.
#[test]
fn scenario_oracles_expose_their_backing_network() {
    let sc = churny_scenario(3);
    let g = sc
        .oracle
        .backing_network()
        .expect("LRU-fronted scenario oracle must forward backing_network");
    assert_eq!(g.num_vertices(), sc.oracle.num_vertices());
}

#[test]
fn flat_td_oracle_is_byte_identical_across_threads() {
    for seed in [3u64, 2018] {
        let sc = churny_scenario(seed);
        let base = run(&sc, 1, None, false);
        assert!(base.audit_errors.is_empty(), "seed {seed}");
        assert!(
            base.metrics.cancelled > 0,
            "seed {seed}: scenario must exercise the cancel path"
        );
        for threads in [1usize, 4] {
            for (label, congestion, td) in [
                ("overlay", flat(), false),
                ("td", flat(), true),
                ("td-no-profile", None, true),
            ] {
                let other = run(&sc, threads, congestion, td);
                assert_eq!(
                    base.events, other.events,
                    "seed {seed} threads {threads} case {label}: event log"
                );
                assert_eq!(
                    base.metrics.unified_cost, other.metrics.unified_cost,
                    "seed {seed} threads {threads} case {label}: unified cost"
                );
                assert_eq!(
                    base.metrics.driven_distance, other.metrics.driven_distance,
                    "seed {seed} threads {threads} case {label}: driven"
                );
                assert!(other.audit_errors.is_empty());
            }
        }
    }
}

#[test]
fn flat_td_oracle_is_byte_identical_across_shards() {
    let sc = churny_scenario(2018);
    let base = run(&sc, 1, None, false);
    assert!(base.audit_errors.is_empty());
    for shards in [1usize, 4] {
        let plain = run_sharded(&sc, shards, flat(), false);
        let td = run_sharded(&sc, shards, flat(), true);
        assert!(plain.audit_errors.is_empty(), "shards {shards}");
        assert!(td.audit_errors.is_empty(), "shards {shards}");
        assert_eq!(
            plain.events, td.events,
            "shards {shards}: flat TD oracle changed the sharded log"
        );
        assert_eq!(plain.metrics.unified_cost, td.metrics.unified_cost);
        if shards == 1 {
            // One shard collapses to the plain service, TD or not.
            assert_eq!(base.events, td.events);
        }
    }
}

/// Two-peak TD runs stay audit-clean, deterministic across planner
/// widths, and keep the economics ledger exact through cancellations.
#[test]
fn congested_td_runs_stay_exact_and_deterministic() {
    let sc = churny_scenario(2018);
    let jam: Option<Arc<CongestionProfile>> = Some(Arc::new(CongestionProfile::chengdu_two_peak()));

    let out = run(&sc, 1, jam.clone(), true);
    assert_eq!(out.audit_errors, Vec::<String>::new());
    assert!(out.metrics.cancelled > 0, "cancel path must run congested");
    assert_eq!(
        out.metrics.driven_distance,
        out.state.total_assigned_distance(),
        "driven == Σ planned must survive TD rerouting"
    );

    let par = run(&sc, 4, jam.clone(), true);
    assert_eq!(out.events, par.events, "threads changed a TD log");

    let sharded = run_sharded(&sc, 4, jam, true);
    assert_eq!(sharded.audit_errors, Vec::<String>::new());
    assert_eq!(
        sharded.metrics.driven_distance,
        sharded.total_assigned_distance()
    );
}

/// A stream dense enough that workers carry multi-stop routes and get
/// snapped mid-leg by later commits — the precondition for both ledger
/// regressions pinned below. Generous deadlines are what make routes
/// actually share; the churn knobs keep cancellation bridges and
/// departure reassignment in play.
fn snap_heavy_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::named("td-ledger")
        .grid_city(10, 10)
        .workers(4)
        .requests(200)
        .horizon(30 * MINUTE_CS)
        .deadline_offset(15 * MINUTE_CS)
        .cancel_rate(0.15)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(2, 2)
        .seed(seed)
        .build()
}

/// The PR-8 ledger regressions, end to end. A *region-structured* jam
/// sends TD detours off the static geodesic — the uniform two-peak
/// tests above can never produce that state (uniform stretch keeps the
/// TD path identical to the static one) — and a mid-leg snap then
/// re-bases the head leg to a driven remainder that differs from
/// `dis(l_0, l_1)`. Two distinct bugs lived there, and each listed
/// `(planner, seed, jam)` triple reproduced one before its fix:
///
/// * insertion operators re-querying intact hops from the oracle
///   instead of the stored legs leaked the difference into every
///   committed delta (tshare's basic insertion tripped the drain
///   audit first);
/// * the motion cache key `(l_0, l_1, arr[1])` missed reorders and
///   front insertions that re-base the head leg while every keyed
///   coordinate collides — under TD the arrival at `l_1` is a property
///   of the physical path, which the snapped vertex lies on — so snaps
///   kept crediting from the stale expansion.
#[test]
fn regional_td_runs_keep_the_ledger_exact_for_every_operator() {
    use road_network::congestion::HOUR_CS;

    type PlannerCtor = Box<dyn Fn() -> Box<dyn Planner>>;
    let cases: Vec<(&str, PlannerCtor, u64, u32)> = vec![
        // Stored-leg costing in basic insertion.
        (
            "tshare",
            Box::new(|| Box::new(TSharePlanner::new())),
            0,
            4000,
        ),
        // Motion cache-key collision via a front insertion onto the
        // same first stop.
        (
            "tshare",
            Box::new(|| Box::new(TSharePlanner::new())),
            4,
            6000,
        ),
        // Motion cache-key collision via kinetic reorders.
        (
            "kinetic",
            Box::new(|| Box::new(KineticPlanner::new())),
            1,
            6000,
        ),
        (
            "kinetic",
            Box::new(|| Box::new(KineticPlanner::new())),
            4,
            6000,
        ),
        // Same family through the linear-DP operator.
        (
            "pruneGreedyDP",
            Box::new(|| Box::new(PruneGreedyDp::new())),
            2,
            4000,
        ),
    ];
    for (name, mk, seed, jam_pm) in &cases {
        let sc = snap_heavy_scenario(*seed);
        let g = sc
            .oracle
            .backing_network()
            .expect("backing network")
            .clone();
        let points: Vec<_> = (0..g.num_vertices())
            .map(|i| g.point(VertexId(i as u32)))
            .collect();
        let regions = CongestionProfile::regionize(&points, 3, 3);
        // All-day jam in the center cell, free flow elsewhere: strong
        // enough that goal-directed TD paths detour around downtown.
        let tables: Vec<Vec<u32>> = (0..9)
            .map(|r| vec![if r == 4 { *jam_pm } else { 1000 }])
            .collect();
        let jam = Arc::new(
            CongestionProfile::per_region("core-jam", 24 * HOUR_CS, tables, regions)
                .expect("well-formed profile"),
        );
        let out = run_with(&sc, mk(), Some(jam), true);
        assert_eq!(
            out.audit_errors,
            Vec::<String>::new(),
            "{name} seed={seed} jam={jam_pm}"
        );
        assert_eq!(
            out.metrics.driven_distance,
            out.state.total_assigned_distance(),
            "{name} seed={seed} jam={jam_pm}: driven == Σ planned must survive regional TD rerouting"
        );
        assert!(out.metrics.served > 0, "{name}: stream must be exercised");
    }
}

/// The point of TD rerouting: on a fixture whose direct road leaves a
/// jammed region slowly, the TD provider routes around the jam while
/// the naive overlay stretches the whole static leg by the tail's
/// multiplier. Deliveries are strictly earlier, end to end through
/// the simulator.
#[test]
fn td_oracle_routes_around_a_jam_the_overlay_cannot() {
    use road_network::congestion::HOUR_CS;
    use road_network::oracle::HubLabelOracle;
    use urpsm_core::types::{Request, RequestId, Worker, WorkerId};

    // Vertex 0 sits in the jammed region (4× all day); 1 and 2 are
    // free-flow. Region attribution is by each edge's tail:
    //   0 -200- 2            direct  (static 200, TD 4×200 = 800)
    //   0 -10-  1 -300- 2    detour  (TD 4×10 + 300 = 340)
    // The overlay stretches the static leg 0→2 wholesale (from-vertex
    // region): 800. The TD oracle escapes the jam via vertex 1: 340.
    let mut b = NetworkBuilder::new();
    b.add_vertex(Point::new(0.0, 0.0));
    b.add_vertex(Point::new(0.05, 0.01));
    b.add_vertex(Point::new(0.1, 0.0));
    b.add_edge_with_cost(VertexId(0), VertexId(1), 10).unwrap();
    b.add_edge_with_cost(VertexId(1), VertexId(2), 300).unwrap();
    b.add_edge_with_cost(VertexId(0), VertexId(2), 200).unwrap();
    b.set_top_speed_mps(1.0);
    let network = Arc::new(b.finish().unwrap());
    let oracle: Arc<dyn DistanceOracle> = Arc::new(HubLabelOracle::build(network.clone()));
    assert_eq!(oracle.dis(VertexId(0), VertexId(2)), 200);

    let profile = Arc::new(
        CongestionProfile::per_region(
            "jam-at-origin",
            24 * HOUR_CS,
            vec![vec![1000], vec![4000]],
            vec![1, 0, 0],
        )
        .unwrap(),
    );

    let fleet = vec![Worker {
        class: Default::default(),
        id: WorkerId(0),
        origin: VertexId(0),
        capacity: 4,
    }];
    let t0 = 8 * HOUR_CS;
    let requests = vec![Request {
        class: Default::default(),
        id: RequestId(0),
        origin: VertexId(0),
        destination: VertexId(2),
        release: t0,
        deadline: t0 + HOUR_CS,
        penalty: 1_000_000_000,
        capacity: 1,
    }];

    let outcome = |td_oracle: bool| {
        let sim = Simulation::new(
            oracle.clone(),
            fleet.clone(),
            requests.clone(),
            SimConfig {
                grid_cell_m: 10_000.0,
                alpha: 1,
                drain: true,
                threads: 0,
                congestion: Some(profile.clone()),
                td_oracle,
                classes: None,
            },
        )
        .unwrap();
        let mut planner = PruneGreedyDp::new();
        sim.run(&mut planner)
    };

    let overlay = outcome(false);
    let td = outcome(true);
    assert!(
        overlay.audit_errors.is_empty(),
        "{:?}",
        overlay.audit_errors
    );
    assert!(td.audit_errors.is_empty(), "{:?}", td.audit_errors);

    let delivery = |o: &SimOutcome| {
        o.events
            .iter()
            .find_map(|e| match *e {
                SimEvent::Delivery { t, .. } => Some(t),
                _ => None,
            })
            .expect("request must be served")
    };
    // Overlay: static leg 0→2 stretched 4× ⇒ t0 + 800.
    // TD oracle: reroutes over 0-1-2 ⇒ t0 + 340.
    assert_eq!(delivery(&overlay), t0 + 800);
    assert_eq!(delivery(&td), t0 + 340);
    // Free-flow economics (Δ*, unified cost) are shared: rerouting is
    // a travel-time concern, not a pricing one.
    assert_eq!(overlay.metrics.unified_cost, td.metrics.unified_cost);
}
