//! `PlanScratch` reuse must be invisible: a planner that carries its
//! arenas (SoA shortlist, DP columns, probe route) across requests has
//! to produce *exactly* the decisions of a planner built fresh — cold
//! scratch — for every single request. Any residue leaking out of a
//! `clear()`-reused buffer (a stale shortlist entry, a probe route
//! keeping old stops, a DP column with yesterday's distances) shows up
//! here as a diverging outcome stream.
//!
//! The same property is checked under a congestion profile, where the
//! probe route (`Route::insertion_feasible_with`) is `clone_from`-ed
//! per candidate and is the most reuse-prone buffer of the lot.

use std::sync::Arc;

use urpsm::baselines::kinetic::{KineticConfig, KineticPlanner};
use urpsm::baselines::tshare::{SearchMode, TShareConfig, TSharePlanner};
use urpsm::core::planner::{GreedyDp, Planner, PruneGreedyDp};
use urpsm::core::platform::{Outcome, PlatformState};
use urpsm::core::types::{Request, RequestId, Time, Worker, WorkerId};
use urpsm::network::congestion::CongestionProfile;
use urpsm::network::matrix::MatrixOracle;
use urpsm::network::{Cost, VertexId};

const VERTICES: usize = 200;
const WORKERS: u32 = 24;

fn line_oracle() -> Arc<MatrixOracle> {
    let rows: Vec<Vec<Cost>> = (0..VERTICES)
        .map(|u| {
            (0..VERTICES)
                .map(|v| (u.abs_diff(v) as Cost) * 150)
                .collect()
        })
        .collect();
    let points = (0..VERTICES)
        .map(|k| urpsm::network::geo::Point::new(k as f64, 0.0))
        .collect();
    Arc::new(MatrixOracle::from_matrix(&rows, points, 1.0))
}

fn fresh_state(oracle: Arc<MatrixOracle>, congested: bool) -> PlatformState {
    let workers: Vec<Worker> = (0..WORKERS)
        .map(|i| Worker {
            class: Default::default(),
            id: WorkerId(i),
            origin: VertexId(i * (VERTICES as u32 / WORKERS)),
            capacity: 4,
        })
        .collect();
    let mut state = PlatformState::new(oracle, &workers, 20.0, 0);
    if congested {
        state.set_congestion(Some(Arc::new(
            CongestionProfile::constant("x2", 2.0).expect("valid multiplier"),
        )));
    }
    state
}

/// A deterministic mixed stream: most requests insertable, some with
/// deadlines tight enough to reject, some with penalties cheap enough
/// for the economic gate — so reuse is tested across *every* decision
/// path, not just the happy one.
fn stream(n: u32) -> Vec<Request> {
    let mut seed = 0x2545_f491u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    (0..n)
        .map(|i| {
            let o = (rng() % (VERTICES as u64 - 20)) as u32;
            let d = o + 1 + (rng() % 19) as u32;
            let (deadline, penalty): (Time, u64) = match rng() % 4 {
                0 => (3_000 + (rng() % 5_000), u64::MAX / 4), // tight-ish
                1 => (1_000_000, 2_000),                      // cheap penalty
                _ => (1_000_000, u64::MAX / 4),               // roomy
            };
            Request {
                class: Default::default(),
                id: RequestId(i),
                origin: VertexId(o),
                destination: VertexId(d),
                release: 0,
                deadline,
                penalty,
                capacity: 1 + (i % 2),
            }
        })
        .collect()
}

/// Drives `requests` through planners from `make`, either one
/// persistent instance (scratch reused across the whole stream) or a
/// fresh instance per request (scratch always cold), with periodic
/// stop completions so routes shrink as well as grow.
fn run(
    mut make: impl FnMut() -> Box<dyn Planner>,
    persistent: bool,
    congested: bool,
    requests: &[Request],
) -> (Vec<(RequestId, Outcome)>, Cost) {
    let mut state = fresh_state(line_oracle(), congested);
    let mut planner = make();
    let mut outs = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        if !persistent {
            planner = make();
        }
        outs.extend(planner.on_request(&mut state, r));
        // Every few requests a worker reaches a stop: steady state is
        // grow *and* shrink, so cleared buffers see shorter routes
        // after longer ones — the classic leak scenario.
        if i % 3 == 0 {
            let w = WorkerId((i as u32 / 3) % WORKERS);
            if !state.agent(w).route.is_empty() {
                state.pop_worker_stop(w);
            }
        }
    }
    outs.extend(planner.flush(&mut state));
    (outs, state.total_assigned_distance())
}

fn assert_reuse_invisible(name: &str, congested: bool, make: impl Fn() -> Box<dyn Planner>) {
    let requests = stream(160);
    let (warm, warm_dist) = run(&make, true, congested, &requests);
    let (cold, cold_dist) = run(&make, false, congested, &requests);
    // Decisions flowed: the comparison is vacuous otherwise.
    let assigned = warm
        .iter()
        .filter(|(_, o)| matches!(o, Outcome::Assigned { .. }))
        .count();
    let rejected = warm.len() - assigned;
    assert!(assigned > 0, "{name}: no assignments in the stream");
    assert!(rejected > 0, "{name}: no rejections in the stream");
    assert_eq!(
        warm, cold,
        "{name} (congested={congested}): scratch reuse changed a decision"
    );
    assert_eq!(warm_dist, cold_dist, "{name}: assigned distance diverged");
}

#[test]
fn greedy_scratch_reuse_is_invisible() {
    for congested in [false, true] {
        assert_reuse_invisible("GreedyDP", congested, || Box::new(GreedyDp::new()));
    }
}

#[test]
fn prune_greedy_scratch_reuse_is_invisible() {
    for congested in [false, true] {
        assert_reuse_invisible(
            "pruneGreedyDP",
            congested,
            || Box::new(PruneGreedyDp::new()),
        );
    }
}

#[test]
fn prune_greedy_parallel_scratch_reuse_is_invisible() {
    // The fused-parallel engine keeps one arena per pool thread; the
    // leader's merged shortlist and every thread's probe route must be
    // residue-free too.
    for congested in [false, true] {
        assert_reuse_invisible("pruneGreedyDP(t=4)", congested, || {
            Box::new(PruneGreedyDp::with_threads(4))
        });
    }
}

#[test]
fn kinetic_scratch_reuse_is_invisible() {
    // The kinetic baseline carries eleven persistent buffers (items,
    // DP table, DFS stacks, seed/probe routes, best/eval tails).
    for congested in [false, true] {
        assert_reuse_invisible("kinetic", congested, || {
            Box::new(KineticPlanner::from_config(KineticConfig {
                alpha: 1,
                node_budget: 50_000,
            }))
        });
    }
}

#[test]
fn tshare_probe_reuse_is_invisible() {
    // T-Share's persistent grid index is *supposed* to carry state; a
    // fresh planner per request would rebuild it differently after the
    // mid-stream pops. Compare on the congested probe path only, with
    // no pops, where the persistent piece under test is the probe
    // route alone.
    let requests = stream(160);
    let make = || -> Box<dyn Planner> {
        Box::new(TSharePlanner::from_config(TShareConfig {
            grid_cell_m: 2_000.0,
            avg_speed_mps: 8.0,
            search: SearchMode::SingleSide,
        }))
    };
    for congested in [false, true] {
        let run_flat = |persistent: bool| {
            let mut state = fresh_state(line_oracle(), congested);
            let mut planner = make();
            let mut outs = Vec::new();
            for r in &requests {
                if !persistent {
                    // A fresh planner must re-learn the fleet: replay
                    // the grid bootstrap by handing it the same state.
                    planner = make();
                }
                outs.extend(planner.on_request(&mut state, r));
            }
            outs
        };
        assert_eq!(
            run_flat(true),
            run_flat(false),
            "tshare (congested={congested}): probe reuse changed a decision"
        );
    }
}
