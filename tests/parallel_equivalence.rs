//! The parallel planning engine against the sequential one — the
//! determinism contract of DESIGN.md §5, pinned *byte for byte*.
//!
//! `PlannerConfig::threads > 1` fans the decision phase and the exact
//! probes out over scoped threads with a shared atomic best-`Δ` bound
//! for Lemma 8. Thread scheduling may change *which candidates get
//! probed* (more or fewer than sequentially — the set always contains
//! every potential argmin), but never a decision: same assignments,
//! same unified cost,
//! same event log at every width. These tests drive full event
//! streams — including cancellations and fleet churn — through
//! `MobilityService` at widths 1/2/4/8 and require identical outputs.

use proptest::prelude::*;

use urpsm::prelude::*;

fn run_with_threads(sc: &Scenario, threads: usize, prune: bool) -> SimOutcome {
    let cfg = PlannerConfig {
        alpha: sc.alpha,
        strict_economics: false,
        threads,
    };
    let planner: Box<dyn Planner> = if prune {
        Box::new(PruneGreedyDp::from_config(cfg))
    } else {
        Box::new(GreedyDp::from_config(cfg))
    };
    let mut service = urpsm::service(sc, planner);
    for event in sc.event_stream() {
        service.submit(event);
    }
    service.drain()
}

/// Zeroes the wall-clock field so metrics compare structurally.
fn normalized(mut m: SimMetrics) -> SimMetrics {
    m.planning_time = std::time::Duration::ZERO;
    m
}

#[test]
fn parallel_planner_is_byte_identical_on_plain_streams() {
    for seed in [1u64, 7, 42, 2018] {
        let sc = ScenarioBuilder::named("par")
            .grid_city(12, 12)
            .workers(10)
            .requests(200)
            .deadline_offset(8 * MINUTE_CS)
            .horizon(40 * MINUTE_CS)
            .seed(seed)
            .build();
        for prune in [true, false] {
            let base = run_with_threads(&sc, 1, prune);
            assert!(base.audit_errors.is_empty(), "seed {seed}");
            for threads in [2usize, 4, 8] {
                let par = run_with_threads(&sc, threads, prune);
                assert_eq!(
                    base.events, par.events,
                    "seed {seed} prune {prune} threads {threads}: event log"
                );
                assert_eq!(
                    normalized(base.metrics.clone()),
                    normalized(par.metrics.clone()),
                    "seed {seed} prune {prune} threads {threads}: metrics"
                );
                assert_eq!(
                    base.metrics.unified_cost, par.metrics.unified_cost,
                    "seed {seed} prune {prune} threads {threads}: unified cost"
                );
            }
        }
    }
}

#[test]
fn parallel_planner_is_byte_identical_under_churn() {
    // Cancellations and fleet churn interleave route surgery with
    // planning — the mutation plane runs strictly between parallel
    // read phases, and nothing may leak across.
    let sc = ScenarioBuilder::named("par-churn")
        .grid_city(10, 10)
        .workers(6)
        .requests(140)
        .horizon(35 * MINUTE_CS)
        .deadline_offset(8 * MINUTE_CS)
        .cancel_rate(0.15)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(2, 2)
        .seed(2018)
        .build();
    assert!(
        sc.cancellations.len() >= 2,
        "scenario must exercise cancels"
    );
    let base = run_with_threads(&sc, 1, true);
    assert!(base.audit_errors.is_empty());
    for threads in [2usize, 4, 8] {
        let par = run_with_threads(&sc, threads, true);
        assert!(par.audit_errors.is_empty(), "threads {threads}");
        assert_eq!(base.events, par.events, "threads {threads}");
        assert_eq!(
            base.state.total_assigned_distance(),
            par.state.total_assigned_distance(),
            "threads {threads}"
        );
        assert_eq!(base.state.cancelled(), par.state.cancelled());
    }
}

#[test]
fn simconfig_override_reaches_the_planner() {
    // `SimConfig::threads` plumbs through `MobilityService::new` into
    // `Planner::set_threads`; the override must not change outcomes.
    let sc = ScenarioBuilder::named("par-knob")
        .grid_city(8, 8)
        .workers(5)
        .requests(60)
        .seed(11)
        .build();
    let mut base_planner = PruneGreedyDp::new();
    let base = urpsm::simulate(&sc, &mut base_planner);

    let sim = Simulation::new(
        sc.oracle.clone(),
        sc.workers.clone(),
        sc.requests.clone(),
        SimConfig {
            grid_cell_m: sc.grid_cell_m,
            alpha: sc.alpha,
            drain: true,
            threads: 4,
            classes: sc.classes.clone(),
            ..SimConfig::default()
        },
    )
    .expect("sorted stream");
    let mut planner = PruneGreedyDp::new();
    let overridden = sim.run(&mut planner);
    assert_eq!(base.events, overridden.events);
    assert_eq!(base.metrics.unified_cost, overridden.metrics.unified_cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random scenarios (including cancellation/churn event streams and
    /// both departure policies): the parallel planner replays the
    /// sequential one exactly at every tested width.
    #[test]
    fn parallel_matches_sequential_on_random_scenarios(
        seed in 0u64..1_000,
        cancel_pct in 0u32..25,
        departures in 0usize..3,
        arrivals in 0usize..3,
        drain_policy in any::<bool>(),
    ) {
        let sc = ScenarioBuilder::named("par-prop")
            .grid_city(8, 8)
            .workers(5)
            .requests(80)
            .horizon(25 * MINUTE_CS)
            .cancel_rate(f64::from(cancel_pct) / 100.0)
            .cancel_delay(2 * MINUTE_CS)
            .fleet_churn(departures, arrivals)
            .departure_policy(if drain_policy {
                ReassignPolicy::Drain
            } else {
                ReassignPolicy::Reassign
            })
            .seed(seed)
            .build();
        let base = run_with_threads(&sc, 1, true);
        prop_assert!(base.audit_errors.is_empty(), "audit: {:?}", base.audit_errors);
        for threads in [2usize, 4, 8] {
            let par = run_with_threads(&sc, threads, true);
            prop_assert!(par.audit_errors.is_empty(), "threads {threads}");
            prop_assert_eq!(&base.events, &par.events, "threads {}", threads);
            prop_assert_eq!(
                normalized(base.metrics.clone()),
                normalized(par.metrics.clone()),
                "threads {}",
                threads
            );
        }
    }
}
