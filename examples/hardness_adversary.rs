//! Watch the lower bounds of §3.3 bite: on the cycle-graph adversary,
//! the measured cost ratio between an online planner and the
//! clairvoyant optimum grows without bound in `|V|`.
//!
//! ```sh
//! cargo run --release --example hardness_adversary
//! ```

use urpsm::prelude::*;
use urpsm::workloads::adversary::{AdversaryInstance, Lemma};

/// Runs one draw: the online planner sits at `v_0` until the request
/// appears; serve if feasible, otherwise eat the penalty.
fn run_draw(inst: &AdversaryInstance) -> (u64, u64) {
    let oracle: std::sync::Arc<dyn DistanceOracle> =
        std::sync::Arc::new(MatrixOracle::from_network(&inst.network));
    let sim = Simulation::new(
        oracle,
        vec![inst.worker],
        vec![inst.request],
        SimConfig {
            grid_cell_m: 10_000.0,
            alpha: inst.alpha,
            drain: true,
            threads: 0,
            congestion: None,
            td_oracle: false,
            classes: None,
        },
    )
    .expect("single-request stream is sorted");
    let mut planner = PruneGreedyDp::from_config(PlannerConfig {
        alpha: inst.alpha,
        strict_economics: false,
        ..PlannerConfig::default()
    });
    let out = sim.run(&mut planner);
    assert!(out.audit_errors.is_empty());
    (
        out.metrics.unified_cost.value(),
        inst.optimal_unified_cost(),
    )
}

fn main() {
    const DRAWS: u64 = 400;
    println!("Lemma 1 (α=0, p=1): expected unserved requests, ALG vs OPT\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "|V|", "E[ALG]", "E[OPT]", "ratio"
    );
    for n in [8usize, 16, 32, 64, 128] {
        let mut alg_sum = 0u64;
        let mut opt_sum = 0u64;
        for seed in 0..DRAWS {
            let inst = AdversaryInstance::sample(Lemma::MaxServed, n, 100, 150, seed);
            let (alg, opt) = run_draw(&inst);
            alg_sum += alg;
            opt_sum += opt;
        }
        let ealg = alg_sum as f64 / DRAWS as f64;
        let eopt = opt_sum as f64 / DRAWS as f64;
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>10}",
            n,
            ealg,
            eopt,
            if eopt == 0.0 {
                "∞".to_string()
            } else {
                format!("{:.1}", ealg / eopt)
            }
        );
    }
    println!(
        "\nE[OPT] = 0 for every |V| (a clairvoyant driver pre-positions and\n\
         always serves), while E[ALG] → 1: the competitive ratio is\n\
         unbounded, exactly as Lemma 1 proves — no online algorithm,\n\
         randomized or not, can have a constant competitive ratio."
    );
}
