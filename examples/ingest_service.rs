//! Run the ingestion service end to end: threaded producers feed a
//! day of demand through the mpsc front-end, the server micro-batches
//! it per tick with a WAL on, then a "crash" throws the in-memory
//! state away and `recover` rebuilds it from snapshot + WAL — landing
//! on the exact same platform, byte for byte.
//!
//! ```sh
//! cargo run --release --example ingest_service
//! ```

use urpsm::prelude::*;

fn main() {
    let scenario = ScenarioBuilder::named("ingest-demo")
        .grid_city(10, 10)
        .workers(6)
        .requests(120)
        .horizon(30 * MINUTE_CS)
        .cancel_rate(0.1)
        .fleet_churn(1, 1)
        .seed(2018)
        .build();
    let events = scenario.event_stream();
    let wal_dir = std::env::temp_dir().join(format!("urpsm-ingest-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = || ServerConfig {
        wal: Some(WalConfig::new(wal_dir.clone())),
        ..ServerConfig::default()
    };
    let backend = || Backend::single(urpsm::service(&scenario, Box::new(PruneGreedyDp::new())));

    // Phase 1: ingest the first half from four producer threads, with
    // pre-stamped sends so the thread count can't change the run.
    let half = events.len() / 2;
    let mut server = IngestServer::new(backend(), config()).expect("open server");
    let feed = std::sync::Arc::new(events.clone());
    let mut producers = Vec::new();
    for t in 0..4usize {
        let tx = server.handle();
        let feed = std::sync::Arc::clone(&feed);
        producers.push(std::thread::spawn(move || {
            for (i, ev) in feed.iter().take(half).enumerate() {
                if i % 4 == t {
                    tx.send_stamped(i as u64, *ev).expect("server alive");
                }
            }
        }));
    }
    for p in producers {
        p.join().expect("producer");
    }
    while server.step().expect("tick").is_some() {}
    server.sync().expect("sync");
    let checkpoint_before = server.checkpoint();
    println!(
        "ingested {half} events from 4 producers: {} platform events, clock at t={}",
        checkpoint_before.events, checkpoint_before.last_time
    );

    // Phase 2: crash. The server is dropped mid-run — every in-memory
    // structure is gone; only the run directory remains.
    drop(server);
    println!(
        "crash! dropping the server; recovering from {}",
        wal_dir.display()
    );

    // Phase 3: recover and finish the day.
    let (server, report) = recover(backend(), config()).expect("recover");
    println!(
        "recovered {} events from {} WAL bytes (torn tail: {}, snapshot verified: {:?})",
        report.events_replayed, report.wal_bytes, report.torn_tail, report.snapshot_verified
    );
    assert_eq!(
        server.checkpoint(),
        checkpoint_before,
        "recovery must land on the exact pre-crash platform"
    );
    let tx = server.handle();
    for ev in events.iter().skip(report.events_replayed as usize) {
        tx.send(*ev).expect("server alive");
    }
    drop(tx);
    let outcome = server.finish().expect("finish");

    println!(
        "\nday complete: {} served, {} rejected, {} cancelled — {}",
        outcome.metrics.served,
        outcome.metrics.rejected,
        outcome.metrics.cancelled,
        outcome.metrics.unified_cost
    );
    if let Some(w) = outcome.wal {
        println!(
            "wal: {} records, {} bytes, {} snapshots",
            w.records, w.bytes, w.snapshots
        );
    }
    assert!(
        outcome.audit_errors.is_empty(),
        "{:?}",
        outcome.audit_errors
    );
    println!("audit: clean");
    let _ = std::fs::remove_dir_all(&wal_dir);
}
