//! A rush-hour of NYC-like ride-sharing, comparing all five planners
//! of the paper on the same request stream (a miniature Fig. 3 cell).
//!
//! ```sh
//! cargo run --release --example ridesharing_day
//! ```

use urpsm::prelude::*;

fn main() {
    // Scaled NYC-like city: grid network, hotspot demand, rush-hour
    // arrivals. Kept small enough to finish in seconds in this example;
    // the bench harness runs the full Table-5 sweeps.
    let scenario = urpsm::workloads::scenario::nyc_like(7)
        .grid_city(24, 24)
        .workers(60)
        .requests(600)
        .build();
    println!(
        "NYC-like: |V|={} |E|={} |W|={} |R|={}\n",
        scenario.network.num_vertices(),
        scenario.network.num_edges(),
        scenario.workers.len(),
        scenario.requests.len()
    );

    println!(
        "{:<15} {:>12} {:>12} {:>14} {:>12}",
        "algorithm", "served rate", "unified cost", "response time", "audit"
    );
    let mut planners: Vec<Box<dyn Planner>> = vec![
        Box::new(TSharePlanner::new()),
        Box::new(KineticPlanner::new()),
        Box::new(BatchPlanner::new()),
        Box::new(GreedyDp::new()),
        Box::new(PruneGreedyDp::new()),
    ];
    for planner in &mut planners {
        let outcome = urpsm::simulate(&scenario, planner.as_mut());
        println!(
            "{:<15} {:>11.1}% {:>12} {:>14?} {:>12}",
            planner.name(),
            outcome.metrics.served_rate() * 100.0,
            outcome.metrics.unified_cost.value(),
            outcome.metrics.response_time(),
            if outcome.audit_errors.is_empty() {
                "clean"
            } else {
                "VIOLATIONS"
            }
        );
        assert!(
            outcome.audit_errors.is_empty(),
            "{}: {:?}",
            planner.name(),
            outcome.audit_errors
        );
    }
    println!(
        "\nExpected shape (paper §6.2): pruneGreedyDP lowest cost & highest served\n\
         rate; tshare fastest but lowest served rate; kinetic/batch slower."
    );
}
