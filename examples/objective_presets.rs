//! The three objective reductions of §3.2, live.
//!
//! URPSM's single parameterized objective subsumes (i) min total
//! distance, (ii) max served requests and (iii) max revenue. This
//! example runs the same city under each preset and verifies the
//! revenue identity Eq. (2)–(4) *exactly* on the simulation output.
//!
//! ```sh
//! cargo run --release --example objective_presets
//! ```

use urpsm::core::objective::{revenue, revenue_via_unified_cost, ObjectivePreset};
use urpsm::prelude::*;

fn run_with_preset(preset: ObjectivePreset, label: &str) {
    // Build the base scenario, then re-derive penalties and α from the
    // preset (the builder's penalty factor is the §6.1 experimental
    // setting; presets override it).
    let mut scenario = ScenarioBuilder::named(label)
        .grid_city(16, 16)
        .workers(20)
        .requests(300)
        .seed(1234)
        .build();
    scenario.alpha = preset.alpha();
    let oracle = scenario.oracle.clone();
    for r in &mut scenario.requests {
        r.penalty = preset.penalty(oracle.dis(r.origin, r.destination));
    }

    let mut planner = PruneGreedyDp::from_config(PlannerConfig {
        alpha: preset.alpha(),
        strict_economics: false,
        ..PlannerConfig::default()
    });
    let outcome = urpsm::simulate(&scenario, &mut planner);
    assert!(outcome.audit_errors.is_empty());

    println!("── {label}");
    println!(
        "   served {:>5.1}%   total distance {:>9}   UC {:>12}",
        outcome.metrics.served_rate() * 100.0,
        outcome.metrics.unified_cost.total_distance,
        outcome.metrics.unified_cost.value()
    );

    if let ObjectivePreset::MaxRevenue { fare, wage } = preset {
        // Revenue by definition (Eq. 2) …
        let served_ids: std::collections::HashSet<_> = outcome
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Assigned { r, .. } => Some(*r),
                _ => None,
            })
            .collect();
        let served_direct: u64 = scenario
            .requests
            .iter()
            .filter(|r| served_ids.contains(&r.id))
            .map(|r| oracle.dis(r.origin, r.destination))
            .sum();
        let by_definition = revenue(
            fare,
            wage,
            served_direct,
            outcome.metrics.unified_cost.total_distance,
        );
        // … equals revenue through the unified-cost identity (Eq. 4).
        let all_direct: u64 = scenario
            .requests
            .iter()
            .map(|r| oracle.dis(r.origin, r.destination))
            .sum();
        let via_identity =
            revenue_via_unified_cost(fare, all_direct, &outcome.metrics.unified_cost);
        assert_eq!(by_definition, via_identity, "Eq. (2)–(4) must hold exactly");
        println!("   platform revenue: {by_definition} (identity Eq.4 verified exactly)");
    }
}

fn main() {
    println!("One objective, three classic problems (§3.2):\n");
    run_with_preset(
        ObjectivePreset::MaxServedRequests,
        "maximize served requests (α=0, p=1)",
    );
    run_with_preset(
        ObjectivePreset::PenaltyFactor { factor: 10 },
        "unified default (α=1, p=10·dis)",
    );
    run_with_preset(
        ObjectivePreset::MaxRevenue { fare: 30, wage: 1 },
        "maximize revenue (α=c_w, p=c_r·dis)",
    );
}
