//! Crowdsourced food/parcel delivery on a ring-road city.
//!
//! Shared mobility is more than ride-sharing (§1): here workers are
//! couriers with 10-slot boxes, requests are meal orders with multi-
//! item capacities and 30-minute delivery windows, and the objective
//! weighs distance against a per-order penalty of 20× the direct
//! distance. Exercises the same public API with a different domain
//! configuration.
//!
//! ```sh
//! cargo run --release --example food_delivery
//! ```

use urpsm::prelude::*;

fn main() {
    let scenario = ScenarioBuilder::named("food-delivery")
        .ring_city(10, 24) // a Chengdu-style ring city
        .workers(25)
        .capacity(10) // courier box slots
        .requests(400)
        .horizon(120 * MINUTE_CS)
        .deadline_offset(30 * MINUTE_CS) // meals go cold after 30 min
        .penalty_factor(20) // refunding an order is expensive
        .hotspots(6) // restaurant districts
        .seed(99)
        .build();

    println!(
        "ring city: |V|={} |E|={}; {} couriers ({} slots each on average), {} orders",
        scenario.network.num_vertices(),
        scenario.network.num_edges(),
        scenario.workers.len(),
        scenario.workers.iter().map(|w| w.capacity).sum::<u32>() / scenario.workers.len() as u32,
        scenario.requests.len()
    );

    let mut planner = PruneGreedyDp::new();
    let outcome = urpsm::simulate(&scenario, &mut planner);
    assert!(
        outcome.audit_errors.is_empty(),
        "{:?}",
        outcome.audit_errors
    );

    println!(
        "delivered {}/{} orders ({:.1}%), unified cost {}",
        outcome.metrics.served,
        outcome.metrics.requests,
        outcome.metrics.served_rate() * 100.0,
        outcome.metrics.unified_cost.value()
    );

    // Batching quality: how many orders ride together on average?
    let mut max_onboard = vec![0u32; scenario.workers.len()];
    let mut onboard = vec![0u32; scenario.workers.len()];
    let by_id: std::collections::HashMap<_, _> =
        scenario.requests.iter().map(|r| (r.id, r)).collect();
    for ev in &outcome.events {
        match ev {
            SimEvent::Pickup { r, w, .. } => {
                onboard[w.idx()] += by_id[r].capacity;
                max_onboard[w.idx()] = max_onboard[w.idx()].max(onboard[w.idx()]);
            }
            SimEvent::Delivery { r, w, .. } => {
                onboard[w.idx()] -= by_id[r].capacity;
            }
            _ => {}
        }
    }
    let busiest = max_onboard.iter().max().copied().unwrap_or(0);
    println!("fullest courier box at any moment: {busiest} items");
    println!(
        "total distance driven: {} (= {} planned, exact match verified)",
        outcome.metrics.driven_distance,
        outcome.state.total_assigned_distance()
    );

    // Demand over time (10-minute buckets) and the lunch-rush peak.
    let timeline = Timeline::build(&scenario.requests, &outcome.events, 10 * MINUTE_CS);
    println!(
        "\norder arrivals per 10 min: {}",
        timeline.arrivals_sparkline()
    );
    if let Some(peak) = timeline.peak_bucket() {
        println!(
            "peak bucket: {} orders starting at t={} min",
            peak.arrivals,
            peak.start / MINUTE_CS
        );
    }
    let final_rate = timeline
        .cumulative_served_rate()
        .last()
        .copied()
        .unwrap_or(0.0);
    println!(
        "cumulative served rate at close: {:.1}%",
        final_rate * 100.0
    );
}
