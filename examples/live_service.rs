//! Drive the event-driven `MobilityService` from an interleaved trace:
//! request arrivals, rider cancellations, and fleet churn (a worker
//! joining mid-day, another departing with its un-picked requests
//! handed back through the planner) — all through one `submit()` loop,
//! exactly the shape of a live ingestion path.
//!
//! ```sh
//! cargo run --release --example live_service
//! ```

use urpsm::prelude::*;

fn describe(ev: &SimEvent) -> String {
    match *ev {
        SimEvent::Assigned { t, r, w, delta } => {
            format!("t={t:>7}  {r} assigned to {w} (Δ* = {delta})")
        }
        SimEvent::Rejected { t, r } => format!("t={t:>7}  {r} rejected"),
        SimEvent::Pickup { t, r, w } => format!("t={t:>7}  {w} picked up {r}"),
        SimEvent::Delivery { t, r, w } => format!("t={t:>7}  {w} delivered {r}"),
        SimEvent::Cancelled { t, r, freed } => {
            format!("t={t:>7}  {r} cancelled by rider (freed {freed})")
        }
        SimEvent::Unassigned { t, r, w, freed } => {
            format!("t={t:>7}  {r} handed back by departing {w} (freed {freed})")
        }
        SimEvent::WorkerJoined { t, w } => format!("t={t:>7}  {w} joined the fleet"),
        SimEvent::WorkerLeft { t, w } => format!("t={t:>7}  {w} left the fleet"),
    }
}

fn main() {
    // A mid-size grid city with riders that sometimes cancel and a
    // fleet that churns: one worker leaves mid-horizon (handing its
    // un-picked requests back through the planner), one joins.
    let scenario = ScenarioBuilder::named("live-service")
        .grid_city(12, 12)
        .workers(6)
        .requests(160)
        .horizon(40 * MINUTE_CS)
        .cancel_rate(0.12)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(1, 1)
        .departure_policy(ReassignPolicy::Reassign)
        .seed(2018)
        .build();

    let stream = scenario.event_stream();
    let cancels = scenario.cancellations.len();
    println!(
        "event trace: {} events ({} arrivals, {} cancellations, {} fleet changes)\n",
        stream.len(),
        scenario.requests.len(),
        cancels,
        scenario.fleet_events.len()
    );
    assert!(cancels >= 2, "trace must exercise cancellations");

    let mut service = urpsm::service(&scenario, Box::new(PruneGreedyDp::new()));

    // The live loop: one event in, a batch of consequences out. Only
    // lifecycle moments are printed; steady-state decisions are tallied.
    let mut shown = 0usize;
    for event in stream {
        for reply in service.submit(event) {
            let lifecycle = matches!(
                reply,
                SimEvent::Cancelled { .. }
                    | SimEvent::Unassigned { .. }
                    | SimEvent::WorkerJoined { .. }
                    | SimEvent::WorkerLeft { .. }
            );
            if lifecycle && shown < 40 {
                println!("{}", describe(&reply));
                shown += 1;
            }
        }
    }

    let outcome = service.drain();
    println!("\n{}", outcome.metrics);
    println!(
        "completed deliveries: {}   freed by cancellation: {}",
        outcome.state.completed_count(),
        outcome.state.cancelled_count()
    );
    assert!(
        outcome.audit_errors.is_empty(),
        "audit failed: {:?}",
        outcome.audit_errors
    );
    println!("audit: clean ({} events checked)", outcome.events.len());
}
