//! Drive a four-shard city through the geo-sharded dispatch plane:
//! the city is cut into a 2 × 2 lattice of territories, each with its
//! own platform and planner; cross-region demand pulls idle border
//! workers across the seams (`Borrow` boundary policy), and riders
//! cancel while the fleet churns — all through one `submit()` loop.
//!
//! ```sh
//! cargo run --release --example sharded_city
//! ```

use urpsm::prelude::*;

const SHARDS: usize = 4;

fn main() {
    // A four-hotspot city with commuter-style cross-region trips: the
    // demand shape that actually exercises shard seams. Riders cancel,
    // one worker departs mid-horizon, one joins.
    let scenario = ScenarioBuilder::named("sharded-city")
        .grid_city(14, 14)
        .workers(8)
        .requests(200)
        .horizon(45 * MINUTE_CS)
        .hotspots(4)
        .inter_region_trips(0.35)
        .rush_hour_skew(1.3)
        .cancel_rate(0.1)
        .cancel_delay(3 * MINUTE_CS)
        .fleet_churn(1, 1)
        .seed(2018)
        .build();

    let stream = scenario.event_stream();
    println!(
        "event trace: {} events ({} arrivals, {} cancellations, {} fleet changes)",
        stream.len(),
        scenario.requests.len(),
        scenario.cancellations.len(),
        scenario.fleet_events.len()
    );
    assert!(
        !scenario.cancellations.is_empty(),
        "trace must exercise cancellations"
    );

    let mut service = urpsm::sharded(&scenario, SHARDS, |_| Box::new(PruneGreedyDp::new()));
    let (kx, ky) = service.map().dims();
    println!("dispatch plane: {SHARDS} shards ({kx} × {ky} lattice), Borrow seams\n");

    // The live loop: every event is routed to its home shard; handoffs
    // show up in the merged log as a departure + a rejoin of the same
    // global worker at the same instant.
    let mut last_left: Option<(Time, WorkerId)> = None;
    for event in stream {
        for reply in service.submit(event) {
            match reply {
                SimEvent::WorkerLeft { t, w } => last_left = Some((t, w)),
                SimEvent::WorkerJoined { t, w } if last_left == Some((t, w)) => {
                    let home = service.worker_shard(w).expect("alive");
                    println!("t={t:>7}  {w} handed off across a seam into shard {home}");
                }
                _ => {}
            }
        }
    }
    let handoffs = service.handoffs();

    let outcome = service.drain();
    println!("\n{}", outcome.metrics);
    println!("cross-shard handoffs: {handoffs}");
    for report in &outcome.shards {
        let m = &report.outcome.metrics;
        println!(
            "  shard {}: {:>3} requests, served {:>3}, handoffs in/out {}/{}",
            report.shard, m.requests, m.served, report.handoffs_in, report.handoffs_out
        );
    }
    // Every request found its terminal fate in exactly one shard, and
    // the city-wide economics stayed exact through every handoff.
    assert_eq!(
        outcome.metrics.requests,
        outcome
            .shards
            .iter()
            .map(|s| s.outcome.metrics.requests)
            .sum(),
    );
    assert_eq!(
        outcome.metrics.driven_distance,
        outcome.total_assigned_distance()
    );
    assert!(
        outcome.audit_errors.is_empty(),
        "audit failed: {:?}",
        outcome.audit_errors
    );
    println!(
        "audit: clean across {} shards ({} merged events)",
        SHARDS,
        outcome.events.len()
    );
}
