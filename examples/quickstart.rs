//! Quickstart: plan a handful of shared rides in a toy grid city.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use urpsm::prelude::*;

fn main() {
    // A 12×12 grid city (144 intersections), 5 taxis, 60 ride requests
    // over one simulated hour.
    let scenario = ScenarioBuilder::named("quickstart")
        .grid_city(12, 12)
        .workers(5)
        .requests(60)
        .seed(2018)
        .build();
    println!(
        "city: {} vertices / {} edges — {} workers, {} requests",
        scenario.network.num_vertices(),
        scenario.network.num_edges(),
        scenario.workers.len(),
        scenario.requests.len()
    );

    // The paper's planner: decision phase + pruned greedy planning on
    // top of the linear-time DP insertion.
    let mut planner = PruneGreedyDp::new();
    let outcome = urpsm::simulate(&scenario, &mut planner);

    println!("planner: {}", planner.name());
    println!(
        "served {}/{} requests ({:.1}%)",
        outcome.metrics.served,
        outcome.metrics.requests,
        outcome.metrics.served_rate() * 100.0
    );
    println!("unified cost: {}", outcome.metrics.unified_cost);
    println!(
        "mean response time: {:?} per request",
        outcome.metrics.response_time()
    );
    assert!(
        outcome.audit_errors.is_empty(),
        "audit failed: {:?}",
        outcome.audit_errors
    );
    println!("audit: every deadline, capacity and precedence constraint verified ✓");

    // Peek at the first worker's final day.
    let agent = outcome.state.agent(WorkerId(0));
    println!(
        "worker w0 drove {} time-units for {} assigned requests",
        agent.assigned_distance,
        agent.assigned_requests.len()
    );
}
